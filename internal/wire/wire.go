// Package wire implements a small line-oriented TCP protocol through
// which any core.Executor — a single simulated server, a non-diverse
// replication group, or the diverse middleware — can serve network
// clients. This is the "middleware for data replication with diverse SQL
// servers" deployment shape the paper's conclusions call for.
//
// When the executor supports sessions (core.SessionExecutor — every
// endpoint in this module does), each TCP connection gets its own
// session: transactions are scoped to the connection, concurrent
// connections execute in parallel, and a dropped connection rolls back
// only its own open transaction.
//
// Protocol (text, one request per line):
//
//	C: EXEC <sql>\n            (the SQL must not contain newlines)
//	S: OK <ncols> <nrows> <latency_us> <affected>\n
//	   <tab-separated column names>\n     (only when ncols > 0)
//	   <tab-separated row values>\n x nrows
//	   .\n
//	or
//	S: ERR <message>\n
//
// The fourth OK field is the statement's affected-row count
// (INSERT/UPDATE/DELETE). Older clients parse the first three fields
// and ignore the rest; the current client tolerates three-field heads
// from older servers.
//
// Prepared statements (per session, so statement scope = transaction
// scope, as on a real server):
//
//	C: PREPARE <name> <sql>\n  (sql may contain ? or $n placeholders)
//	S: STMT <name> <nparams>\n  or  ERR <message>\n
//
//	C: BIND <name> <arg>\t<arg>...\n   (typed args, see below; none for
//	                                    a zero-parameter statement)
//	S: same responses as EXEC (the statement executes server-side with
//	   the arguments bound — there is no client-side interpolation)
//
//	C: CLOSE <name>\n
//	S: OK 0 0 0 0\n.\n
//
// # Tagged frames and pipelining
//
// Any request line may carry a tag prefix "@<tag> "; the first line of
// its response is then prefixed "@<tag> " verbatim. Tags let a client
// send many requests without waiting (pipelining) and match responses
// that complete out of order.
//
//	C: BATCH <n>\n             (the next n lines are one pipelined batch)
//	C: @1 EXEC <sql>\n
//	C: @2 EXEC <sql>\n ...
//	S: @1 OK ...\n...\n.\n @2 OK ...   (per-session order; tags identify)
//
// BATCH itself produces no response line; it groups n requests so the
// server reads and dispatches them back to back. Pipelining works
// without BATCH too — the envelope exists so one client flush carries
// one burst end to end.
//
// # Session multiplexing
//
// By default a connection is one session (its transaction scope; a
// dropped connection rolls back only its own open transaction). A
// client can open further sessions over the same TCP connection and
// route frames to them with a "#<sid> " prefix (after the tag, if any):
//
//	C: SESSION\n               S: SESS <sid>\n
//	C: #<sid> EXEC <sql>\n     S: the session's response
//	C: DETACH <sid>\n          S: OK 0 0 0 0\n.\n  (rolls back, releases)
//
// Each session executes its frames in order on its own worker, so
// sessions of one connection proceed concurrently — fewer TCP
// connections carry the same number of independent transaction scopes.
// Closing the connection closes every session it opened, rolling back
// exactly their open transactions.
//
// Introspection (armed with ServeMetrics / ServeShards):
//
//	C: METRICS\n
//	S: MET <nbytes>\n<nbytes bytes of Prometheus exposition>.\n
//	or ERR metrics not enabled\n
//
//	C: SHARDS\n
//	S: SHARDS <nbytes>\n<nbytes bytes of shard status text>.\n
//	or ERR not a sharded deployment\n
//
// BIND arguments use the types.Value kind-tagged encoding ("I:42",
// "F:1.5", "S:text", "B:1", "D:2026-01-01", "N" for NULL; payload tabs
// and newlines are backslash-escaped), tab-separated.
//
// NULL result cells are transmitted as the literal \N.
package wire

import (
	"bufio"
	"bytes"
	"errors"
	"fmt"
	"io"
	"net"
	"strconv"
	"strings"
	"sync"
	"time"

	"divsql/internal/core"
	"divsql/internal/engine"
	"divsql/internal/obs"
	"divsql/internal/sql/types"
)

// nullToken is the wire representation of SQL NULL.
const nullToken = `\N`

// cellFlattener removes the result framing characters from cell text.
var cellFlattener = strings.NewReplacer("\t", " ", "\n", " ", "\r", " ")

// Server serves an Executor over TCP.
type Server struct {
	exec    core.Executor
	metrics *wireMetrics

	mu         sync.Mutex
	listener   net.Listener
	conns      map[net.Conn]bool
	wg         sync.WaitGroup
	closed     bool
	metricsReg *obs.Registry // answers the METRICS frame; nil = disabled
	shardsFn   func() string // answers the SHARDS frame; nil = disabled
}

// ServeShards arms the SHARDS introspection frame with a status
// renderer (a sharded deployment's per-shard replica/quarantine state).
// Call before Listen; nil (the default) answers SHARDS with an error.
func (s *Server) ServeShards(fn func() string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.shardsFn = fn
}

// shardsFunc reads the armed shard-status renderer.
func (s *Server) shardsFunc() func() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.shardsFn
}

// NewServer wraps an executor.
func NewServer(exec core.Executor) *Server {
	return &Server{exec: exec, conns: make(map[net.Conn]bool), metrics: newWireMetrics()}
}

// Listen starts accepting connections on addr ("host:port"; port 0
// picks a free port). It returns the bound address.
func (s *Server) Listen(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("wire listen: %w", err)
	}
	s.mu.Lock()
	s.listener = ln
	s.mu.Unlock()
	s.wg.Add(1)
	go s.acceptLoop(ln)
	return ln.Addr().String(), nil
}

func (s *Server) acceptLoop(ln net.Listener) {
	defer s.wg.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			_ = conn.Close()
			return
		}
		s.conns[conn] = true
		s.mu.Unlock()
		s.wg.Add(1)
		go s.serveConn(conn)
	}
}

// wireConn is one TCP connection's server-side state: a table of
// multiplexed sessions (sid 0 is the connection's implicit root
// session) and the write mutex serializing their responses onto the
// socket. Each session executes its frames in order on its own worker
// goroutine; responses are rendered to a private buffer and written
// atomically, so interleaved sessions never interleave bytes.
type wireConn struct {
	s    *Server
	conn countingConn

	wmu sync.Mutex // serializes whole-response writes

	sessions map[int]*wireSession // touched only by the reader goroutine
	nextSID  int
	wg       sync.WaitGroup
}

// wireSession is one multiplexed session: its executor (a core.Session
// when the endpoint supports them), its prepared-statement table and
// its frame queue.
type wireSession struct {
	id    int
	exec  core.Executor
	sess  core.Session // closed on teardown; nil for sessionless endpoints
	stmts map[string]core.Statement
	ch    chan wireReq
}

// wireReq is one queued frame.
type wireReq struct {
	tag     string // includes the leading '@'; "" when untagged
	frame   string // EXEC, PREPARE, BIND, CLOSE
	payload string
	start   time.Time
	detach  bool // close the session after replying
}

// newSession opens one multiplexed session and starts its worker.
func (wc *wireConn) newSession() *wireSession {
	ws := &wireSession{
		id:    wc.nextSID,
		exec:  wc.s.exec,
		stmts: make(map[string]core.Statement),
		ch:    make(chan wireReq, 64),
	}
	wc.nextSID++
	if se, ok := wc.s.exec.(core.SessionExecutor); ok {
		ws.sess = se.OpenSession()
		ws.exec = ws.sess
	}
	wc.sessions[ws.id] = ws
	wc.wg.Add(1)
	go wc.worker(ws)
	return ws
}

// write sends one complete response atomically.
func (wc *wireConn) write(b []byte) {
	wc.wmu.Lock()
	_, _ = wc.conn.Write(b)
	wc.wmu.Unlock()
}

// writeTagged sends one complete response, prefixing the tag onto its
// first line.
func (wc *wireConn) writeTagged(tag, resp string) {
	if tag != "" {
		resp = tag + " " + resp
	}
	wc.write([]byte(resp))
}

// worker drains one session's frame queue. Exiting — channel closed on
// connection teardown, or a DETACH frame — rolls back the session's
// open transaction and releases its prepared statements, touching no
// other session.
func (wc *wireConn) worker(ws *wireSession) {
	defer wc.wg.Done()
	defer func() {
		for _, st := range ws.stmts {
			_ = st.Close()
		}
		if ws.sess != nil {
			_ = ws.sess.Close()
		}
	}()
	var buf bytes.Buffer
	for req := range ws.ch {
		buf.Reset()
		if req.tag != "" {
			buf.WriteString(req.tag)
			buf.WriteByte(' ')
		}
		frame := req.frame
		switch {
		case req.detach:
			frame = "DETACH"
			buf.WriteString("OK 0 0 0 0\n.\n")
		case req.frame == "EXEC":
			handleExec(ws.exec, &buf, req.payload)
		case req.frame == "PREPARE":
			handlePrepare(ws.exec, &buf, ws.stmts, req.payload)
		case req.frame == "BIND":
			handleBind(&buf, ws.stmts, req.payload)
		case req.frame == "CLOSE":
			name := strings.TrimSpace(req.payload)
			if st, ok := ws.stmts[name]; ok {
				_ = st.Close()
				delete(ws.stmts, name)
			}
			buf.WriteString("OK 0 0 0 0\n.\n")
		}
		wc.write(buf.Bytes())
		// The latency window is read-to-write: queueing, execution
		// (adjudication included on a diverse endpoint) and response
		// serialization.
		wc.s.metrics.record(frame, time.Since(req.start))
		if req.detach {
			return
		}
	}
}

func (s *Server) serveConn(conn net.Conn) {
	defer s.wg.Done()
	s.metrics.connsTotal.Inc()
	s.metrics.connsOpen.Add(1)
	defer func() {
		s.metrics.connsOpen.Add(-1)
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		_ = conn.Close()
	}()
	wc := &wireConn{
		s:        s,
		conn:     countingConn{Conn: conn, m: s.metrics},
		sessions: make(map[int]*wireSession),
	}
	// sid 0 is the connection's root session: untagged unprefixed frames
	// behave exactly as before multiplexing existed.
	wc.newSession()
	// Teardown closes every session the connection opened — each worker
	// drains its queue, then rolls back its own open transaction. A
	// connection dropped mid-batch therefore aborts exactly its own
	// sessions' transactions.
	defer func() {
		for _, ws := range wc.sessions {
			close(ws.ch)
		}
		wc.wg.Wait()
	}()
	rd := bufio.NewReader(wc.conn)
	for {
		line, err := rd.ReadString('\n')
		if err != nil {
			return
		}
		line = strings.TrimRight(line, "\r\n")
		if n, ok := batchHeader(line); ok {
			s.metrics.record("BATCH", 0)
			for i := 0; i < n; i++ {
				bline, err := rd.ReadString('\n')
				if err != nil {
					return
				}
				if !wc.dispatch(strings.TrimRight(bline, "\r\n")) {
					return
				}
			}
			continue
		}
		if !wc.dispatch(line) {
			return
		}
	}
}

// batchHeader parses a "BATCH <n>" envelope line.
func batchHeader(line string) (int, bool) {
	rest, ok := strings.CutPrefix(line, "BATCH ")
	if !ok {
		return 0, false
	}
	n, err := strconv.Atoi(strings.TrimSpace(rest))
	if err != nil || n < 0 {
		return 0, false
	}
	return n, true
}

// dispatch services one request line: session frames are queued to
// their session's worker, control frames are answered inline. It
// returns false on QUIT.
func (wc *wireConn) dispatch(line string) bool {
	start := time.Now()
	var tag string
	if strings.HasPrefix(line, "@") {
		i := strings.IndexByte(line, ' ')
		if i <= 1 {
			wc.write([]byte("ERR malformed tag prefix\n"))
			return true
		}
		tag, line = line[:i], line[i+1:]
	}
	ws := wc.sessions[0]
	if strings.HasPrefix(line, "#") {
		i := strings.IndexByte(line, ' ')
		if i <= 1 {
			wc.writeTagged(tag, "ERR malformed session prefix\n")
			return true
		}
		sid, err := strconv.Atoi(line[1:i])
		target, ok := wc.sessions[sid]
		if err != nil || !ok {
			wc.writeTagged(tag, fmt.Sprintf("ERR unknown session %s\n", line[1:i]))
			return true
		}
		ws, line = target, line[i+1:]
	}
	switch {
	case strings.HasPrefix(line, "EXEC "):
		ws.ch <- wireReq{tag: tag, frame: "EXEC", payload: line[len("EXEC "):], start: start}
	case strings.HasPrefix(line, "PREPARE "):
		ws.ch <- wireReq{tag: tag, frame: "PREPARE", payload: line[len("PREPARE "):], start: start}
	case strings.HasPrefix(line, "BIND "):
		ws.ch <- wireReq{tag: tag, frame: "BIND", payload: line[len("BIND "):], start: start}
	case strings.HasPrefix(line, "CLOSE "):
		ws.ch <- wireReq{tag: tag, frame: "CLOSE", payload: line[len("CLOSE "):], start: start}
	case line == "SESSION":
		ns := wc.newSession()
		wc.writeTagged(tag, fmt.Sprintf("SESS %d\n", ns.id))
		wc.s.metrics.record("SESSION", time.Since(start))
	case strings.HasPrefix(line, "DETACH "):
		sidTxt := strings.TrimSpace(line[len("DETACH "):])
		sid, err := strconv.Atoi(sidTxt)
		target, ok := wc.sessions[sid]
		switch {
		case err != nil || !ok:
			wc.writeTagged(tag, fmt.Sprintf("ERR unknown session %s\n", sidTxt))
		case sid == 0:
			wc.writeTagged(tag, "ERR cannot detach the root session\n")
		default:
			// Remove first so no further frame can route to it, then let
			// the worker finish its queue and answer the DETACH itself.
			delete(wc.sessions, sid)
			target.ch <- wireReq{tag: tag, start: start, detach: true}
		}
	case line == "PING":
		wc.writeTagged(tag, "OK 0 0 0 0\n.\n")
		wc.s.metrics.record("PING", time.Since(start))
	case line == "METRICS":
		if reg := wc.s.metricsRegistry(); reg != nil {
			doc := reg.Render()
			wc.writeTagged(tag, fmt.Sprintf("MET %d\n%s.\n", len(doc), doc))
		} else {
			wc.writeTagged(tag, "ERR metrics not enabled\n")
		}
		wc.s.metrics.record("METRICS", time.Since(start))
	case line == "SHARDS":
		if fn := wc.s.shardsFunc(); fn != nil {
			doc := fn()
			wc.writeTagged(tag, fmt.Sprintf("SHARDS %d\n%s.\n", len(doc), doc))
		} else {
			wc.writeTagged(tag, "ERR not a sharded deployment\n")
		}
		wc.s.metrics.record("SHARDS", time.Since(start))
	case line == "QUIT":
		wc.s.metrics.record("QUIT", time.Since(start))
		return false
	default:
		wc.writeTagged(tag, "ERR unknown command\n")
	}
	return true
}

// handlePrepare services one PREPARE frame: "<name> <sql>".
func handlePrepare(exec core.Executor, wr io.Writer, stmts map[string]core.Statement, req string) {
	name, sql, ok := strings.Cut(req, " ")
	if !ok || name == "" || strings.TrimSpace(sql) == "" {
		fmt.Fprint(wr, "ERR malformed PREPARE (want: PREPARE <name> <sql>)\n")
		return
	}
	pe, can := exec.(core.PreparedExecutor)
	if !can {
		fmt.Fprint(wr, "ERR endpoint does not support prepared statements\n")
		return
	}
	st, err := pe.Prepare(sql)
	if err != nil {
		fmt.Fprintf(wr, "ERR %s\n", strings.ReplaceAll(err.Error(), "\n", " "))
		return
	}
	if old, dup := stmts[name]; dup {
		_ = old.Close() // re-preparing a name replaces the statement
	}
	stmts[name] = st
	fmt.Fprintf(wr, "STMT %s %d\n", name, st.NumParams())
}

// handleBind services one BIND frame: "<name>[ <arg>\t<arg>...]" — it
// executes the named prepared statement with the decoded typed
// arguments and answers exactly like EXEC.
func handleBind(wr io.Writer, stmts map[string]core.Statement, req string) {
	name, rest, _ := strings.Cut(req, " ")
	st, ok := stmts[strings.TrimSpace(name)]
	if !ok {
		fmt.Fprintf(wr, "ERR unknown prepared statement %q\n", strings.TrimSpace(name))
		return
	}
	var args []types.Value
	if rest = strings.TrimRight(rest, " "); rest != "" {
		for _, tok := range strings.Split(rest, "\t") {
			v, err := types.DecodeValue(tok)
			if err != nil {
				fmt.Fprintf(wr, "ERR %s\n", err.Error())
				return
			}
			args = append(args, v)
		}
	}
	res, lat, err := st.Exec(args...)
	writeResult(wr, res, lat, err)
}

func handleExec(exec core.Executor, wr io.Writer, sql string) {
	res, lat, err := exec.Exec(sql)
	writeResult(wr, res, lat, err)
}

// writeResult renders one statement outcome in the EXEC response format.
func writeResult(wr io.Writer, res *engine.Result, lat time.Duration, err error) {
	if err != nil {
		fmt.Fprintf(wr, "ERR %s\n", strings.ReplaceAll(err.Error(), "\n", " "))
		return
	}
	ncols, nrows := 0, 0
	var affected int64
	if res != nil {
		affected = res.Affected
		if res.Kind == engine.ResultRows {
			ncols, nrows = len(res.Columns), len(res.Rows)
		}
	}
	fmt.Fprintf(wr, "OK %d %d %d %d\n", ncols, nrows, lat.Microseconds(), affected)
	if ncols > 0 {
		fmt.Fprintln(wr, strings.Join(res.Columns, "\t"))
		for _, row := range res.Rows {
			cells := make([]string, len(row))
			for i, v := range row {
				if v.IsNull() {
					cells[i] = nullToken
				} else {
					// Cells are framed by tabs and newlines; both flatten
					// to spaces (typed BIND arguments can smuggle them into
					// stored data, which inline SQL never could).
					cells[i] = cellFlattener.Replace(v.String())
				}
			}
			fmt.Fprintln(wr, strings.Join(cells, "\t"))
		}
	}
	fmt.Fprintln(wr, ".")
}

// Close stops the listener, closes open connections and waits for the
// connection goroutines to exit.
func (s *Server) Close() error {
	s.mu.Lock()
	s.closed = true
	ln := s.listener
	for c := range s.conns {
		_ = c.Close()
	}
	s.mu.Unlock()
	var err error
	if ln != nil {
		err = ln.Close()
	}
	s.wg.Wait()
	return err
}

// ---------------------------------------------------------------------------
// Client

// Result is a decoded wire response.
type Result struct {
	Columns []string
	Rows    [][]types.Value
	Latency time.Duration
	// Affected is the statement's affected-row count
	// (INSERT/UPDATE/DELETE; zero from pre-affected servers).
	Affected int64
}

// Client is a connection to a wire server.
type Client struct {
	mu     sync.Mutex
	conn   net.Conn
	rd     *bufio.Reader
	nextID int
}

// Dial connects to a wire server.
func Dial(addr string) (*Client, error) {
	conn, err := net.DialTimeout("tcp", addr, 5*time.Second)
	if err != nil {
		return nil, fmt.Errorf("wire dial: %w", err)
	}
	return &Client{conn: conn, rd: bufio.NewReader(conn)}, nil
}

// Exec sends one statement and decodes the response. SQL containing
// newlines is flattened to spaces.
func (c *Client) Exec(sql string) (*Result, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	flat := strings.ReplaceAll(strings.ReplaceAll(sql, "\r", " "), "\n", " ")
	if _, err := fmt.Fprintf(c.conn, "EXEC %s\n", flat); err != nil {
		return nil, fmt.Errorf("wire send: %w", err)
	}
	return c.readResult()
}

// ExecBatch pipelines a burst of statements: one BATCH envelope carries
// every tagged EXEC in a single write, and the responses stream back
// without a per-statement round trip. Results and errors are
// index-aligned with sqls. The statements run in order on the
// connection's root session — the batch is a pipeline, not a
// transaction; a failed statement does not stop the ones after it.
func (c *Client) ExecBatch(sqls []string) ([]*Result, []error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	results := make([]*Result, len(sqls))
	errs := make([]error, len(sqls))
	if len(sqls) == 0 {
		return results, errs
	}
	var b strings.Builder
	fmt.Fprintf(&b, "BATCH %d\n", len(sqls))
	for i, sql := range sqls {
		flat := strings.ReplaceAll(strings.ReplaceAll(sql, "\r", " "), "\n", " ")
		fmt.Fprintf(&b, "@%d EXEC %s\n", i+1, flat)
	}
	if _, err := io.WriteString(c.conn, b.String()); err != nil {
		for i := range errs {
			errs[i] = fmt.Errorf("wire send: %w", err)
		}
		return results, errs
	}
	for range sqls {
		tag, res, err := c.readTaggedResult()
		idx, convErr := strconv.Atoi(strings.TrimPrefix(tag, "@"))
		if convErr != nil || idx < 1 || idx > len(sqls) {
			// A response we cannot match poisons the stream; fail the
			// remaining slots and stop reading.
			for i := range errs {
				if results[i] == nil && errs[i] == nil {
					errs[i] = fmt.Errorf("wire: unmatched batch response tag %q", tag)
				}
			}
			return results, errs
		}
		results[idx-1], errs[idx-1] = res, err
	}
	return results, errs
}

// Shards sends a SHARDS frame and returns the server's shard status
// text. It fails when the deployment is not sharded (ServeShards was
// not called).
func (c *Client) Shards() (string, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, err := fmt.Fprint(c.conn, "SHARDS\n"); err != nil {
		return "", fmt.Errorf("wire send: %w", err)
	}
	return c.readSizedDoc("SHARDS")
}

// readSizedDoc decodes a "<kind> <nbytes>\npayload.\n" response.
// Caller holds c.mu.
func (c *Client) readSizedDoc(kind string) (string, error) {
	head, err := c.rd.ReadString('\n')
	if err != nil {
		return "", fmt.Errorf("wire recv: %w", err)
	}
	head = strings.TrimRight(head, "\r\n")
	if strings.HasPrefix(head, "ERR ") {
		return "", errors.New(strings.TrimPrefix(head, "ERR "))
	}
	var n int
	if _, err := fmt.Sscanf(head, kind+" %d", &n); err != nil {
		return "", fmt.Errorf("wire: malformed %s response %q", kind, head)
	}
	doc := make([]byte, n)
	if _, err := io.ReadFull(c.rd, doc); err != nil {
		return "", fmt.Errorf("wire recv: %w", err)
	}
	term, err := c.rd.ReadString('\n')
	if err != nil {
		return "", err
	}
	if strings.TrimRight(term, "\r\n") != "." {
		return "", fmt.Errorf("wire: missing terminator, got %q", term)
	}
	return string(doc), nil
}

// readResult decodes one EXEC/BIND-style response. Caller holds c.mu.
func (c *Client) readResult() (*Result, error) {
	_, res, err := c.readTaggedResult()
	return res, err
}

// readTaggedResult decodes one EXEC/BIND-style response, stripping and
// returning an optional "@<tag> " prefix. Caller holds c.mu.
func (c *Client) readTaggedResult() (string, *Result, error) {
	head, err := c.rd.ReadString('\n')
	if err != nil {
		return "", nil, fmt.Errorf("wire recv: %w", err)
	}
	head = strings.TrimRight(head, "\r\n")
	var tag string
	if strings.HasPrefix(head, "@") {
		if i := strings.IndexByte(head, ' '); i > 1 {
			tag, head = head[:i], head[i+1:]
		}
	}
	if strings.HasPrefix(head, "ERR ") {
		return tag, nil, errors.New(strings.TrimPrefix(head, "ERR "))
	}
	var ncols, nrows int
	var latUS, affected int64
	// Four head fields since affected-count support; a three-field head
	// from an older server leaves Affected zero.
	if _, err := fmt.Sscanf(head, "OK %d %d %d %d", &ncols, &nrows, &latUS, &affected); err != nil {
		if _, err := fmt.Sscanf(head, "OK %d %d %d", &ncols, &nrows, &latUS); err != nil {
			return tag, nil, fmt.Errorf("wire: malformed response %q", head)
		}
	}
	res := &Result{Latency: time.Duration(latUS) * time.Microsecond, Affected: affected}
	if err := readResultBody(c.rd, res, ncols, nrows); err != nil {
		return tag, nil, err
	}
	return tag, res, nil
}

// readResultBody reads the column, row and terminator lines of one
// EXEC/BIND-style response into res.
func readResultBody(rd *bufio.Reader, res *Result, ncols, nrows int) error {
	if ncols > 0 {
		colLine, err := rd.ReadString('\n')
		if err != nil {
			return err
		}
		res.Columns = strings.Split(strings.TrimRight(colLine, "\r\n"), "\t")
		for i := 0; i < nrows; i++ {
			rowLine, err := rd.ReadString('\n')
			if err != nil {
				return err
			}
			cells := strings.Split(strings.TrimRight(rowLine, "\r\n"), "\t")
			row := make([]types.Value, len(cells))
			for j, cell := range cells {
				row[j] = decodeCell(cell)
			}
			res.Rows = append(res.Rows, row)
		}
	}
	term, err := rd.ReadString('\n')
	if err != nil {
		return err
	}
	if strings.TrimRight(term, "\r\n") != "." {
		return fmt.Errorf("wire: missing terminator, got %q", term)
	}
	return nil
}

// Metrics sends a METRICS frame and returns the server's rendered
// Prometheus exposition document. It fails when the server has no
// metrics registry armed (ServeMetrics was not called).
func (c *Client) Metrics() (string, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, err := fmt.Fprint(c.conn, "METRICS\n"); err != nil {
		return "", fmt.Errorf("wire send: %w", err)
	}
	return c.readSizedDoc("MET")
}

// Stmt is a client-side handle on a server-side prepared statement.
type Stmt struct {
	c       *Client
	name    string
	sql     string
	nparams int
	closed  bool
}

// Prepare sends a PREPARE frame and returns a handle on the server-side
// statement. The SQL may contain ? or $n placeholders; the arguments of
// each execution travel typed in BIND frames — nothing is interpolated
// into the statement text on either side.
func (c *Client) Prepare(sql string) (*Stmt, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.nextID++
	name := fmt.Sprintf("s%d", c.nextID)
	flat := strings.ReplaceAll(strings.ReplaceAll(sql, "\r", " "), "\n", " ")
	if _, err := fmt.Fprintf(c.conn, "PREPARE %s %s\n", name, flat); err != nil {
		return nil, fmt.Errorf("wire send: %w", err)
	}
	head, err := c.rd.ReadString('\n')
	if err != nil {
		return nil, fmt.Errorf("wire recv: %w", err)
	}
	head = strings.TrimRight(head, "\r\n")
	if strings.HasPrefix(head, "ERR ") {
		return nil, errors.New(strings.TrimPrefix(head, "ERR "))
	}
	var gotName string
	var nparams int
	if _, err := fmt.Sscanf(head, "STMT %s %d", &gotName, &nparams); err != nil || gotName != name {
		return nil, fmt.Errorf("wire: malformed PREPARE response %q", head)
	}
	return &Stmt{c: c, name: name, sql: sql, nparams: nparams}, nil
}

// SQL returns the statement text as prepared.
func (st *Stmt) SQL() string { return st.sql }

// NumParams reports how many arguments Exec expects.
func (st *Stmt) NumParams() int { return st.nparams }

// Exec executes the prepared statement with the given typed arguments
// via a BIND frame and decodes the response.
func (st *Stmt) Exec(args ...types.Value) (*Result, error) {
	st.c.mu.Lock()
	defer st.c.mu.Unlock()
	if st.closed {
		return nil, errors.New("wire: statement is closed")
	}
	enc := make([]string, len(args))
	for i, v := range args {
		enc[i] = v.Encode()
	}
	req := "BIND " + st.name
	if len(enc) > 0 {
		req += " " + strings.Join(enc, "\t")
	}
	if _, err := fmt.Fprintf(st.c.conn, "%s\n", req); err != nil {
		return nil, fmt.Errorf("wire send: %w", err)
	}
	return st.c.readResult()
}

// Close deallocates the server-side statement.
func (st *Stmt) Close() error {
	st.c.mu.Lock()
	defer st.c.mu.Unlock()
	if st.closed {
		return nil
	}
	st.closed = true
	if _, err := fmt.Fprintf(st.c.conn, "CLOSE %s\n", st.name); err != nil {
		return fmt.Errorf("wire send: %w", err)
	}
	_, err := st.c.readResult()
	return err
}

// decodeCell reconstructs a typed value from its wire form. Numbers
// become numeric values; everything else stays a string.
func decodeCell(cell string) types.Value {
	if cell == nullToken {
		return types.Null()
	}
	if i, err := strconv.ParseInt(cell, 10, 64); err == nil {
		return types.NewInt(i)
	}
	if f, err := strconv.ParseFloat(cell, 64); err == nil {
		return types.NewFloat(f)
	}
	return types.NewString(cell)
}

// Close closes the connection.
func (c *Client) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	_, _ = fmt.Fprint(c.conn, "QUIT\n")
	return c.conn.Close()
}
