// Package wire implements a small line-oriented TCP protocol through
// which any core.Executor — a single simulated server, a non-diverse
// replication group, or the diverse middleware — can serve network
// clients. This is the "middleware for data replication with diverse SQL
// servers" deployment shape the paper's conclusions call for.
//
// When the executor supports sessions (core.SessionExecutor — every
// endpoint in this module does), each TCP connection gets its own
// session: transactions are scoped to the connection, concurrent
// connections execute in parallel, and a dropped connection rolls back
// only its own open transaction.
//
// Protocol (text, one request per line):
//
//	C: EXEC <sql>\n            (the SQL must not contain newlines)
//	S: OK <ncols> <nrows> <latency_us>\n
//	   <tab-separated column names>\n     (only when ncols > 0)
//	   <tab-separated row values>\n x nrows
//	   .\n
//	or
//	S: ERR <message>\n
//
// Prepared statements (per connection, so statement scope = session
// scope, as on a real server):
//
//	C: PREPARE <name> <sql>\n  (sql may contain ? or $n placeholders)
//	S: STMT <name> <nparams>\n  or  ERR <message>\n
//
//	C: BIND <name> <arg>\t<arg>...\n   (typed args, see below; none for
//	                                    a zero-parameter statement)
//	S: same responses as EXEC (the statement executes server-side with
//	   the arguments bound — there is no client-side interpolation)
//
//	C: CLOSE <name>\n
//	S: OK 0 0 0\n.\n
//
// Introspection (armed with ServeMetrics — see metrics.go):
//
//	C: METRICS\n
//	S: MET <nbytes>\n<nbytes bytes of Prometheus exposition>.\n
//	or ERR metrics not enabled\n
//
// BIND arguments use the types.Value kind-tagged encoding ("I:42",
// "F:1.5", "S:text", "B:1", "D:2026-01-01", "N" for NULL; payload tabs
// and newlines are backslash-escaped), tab-separated.
//
// NULL result cells are transmitted as the literal \N.
package wire

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"net"
	"strconv"
	"strings"
	"sync"
	"time"

	"divsql/internal/core"
	"divsql/internal/engine"
	"divsql/internal/obs"
	"divsql/internal/sql/types"
)

// nullToken is the wire representation of SQL NULL.
const nullToken = `\N`

// cellFlattener removes the result framing characters from cell text.
var cellFlattener = strings.NewReplacer("\t", " ", "\n", " ", "\r", " ")

// Server serves an Executor over TCP.
type Server struct {
	exec    core.Executor
	metrics *wireMetrics

	mu         sync.Mutex
	listener   net.Listener
	conns      map[net.Conn]bool
	wg         sync.WaitGroup
	closed     bool
	metricsReg *obs.Registry // answers the METRICS frame; nil = disabled
}

// NewServer wraps an executor.
func NewServer(exec core.Executor) *Server {
	return &Server{exec: exec, conns: make(map[net.Conn]bool), metrics: newWireMetrics()}
}

// Listen starts accepting connections on addr ("host:port"; port 0
// picks a free port). It returns the bound address.
func (s *Server) Listen(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("wire listen: %w", err)
	}
	s.mu.Lock()
	s.listener = ln
	s.mu.Unlock()
	s.wg.Add(1)
	go s.acceptLoop(ln)
	return ln.Addr().String(), nil
}

func (s *Server) acceptLoop(ln net.Listener) {
	defer s.wg.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			_ = conn.Close()
			return
		}
		s.conns[conn] = true
		s.mu.Unlock()
		s.wg.Add(1)
		go s.serveConn(conn)
	}
}

func (s *Server) serveConn(conn net.Conn) {
	defer s.wg.Done()
	s.metrics.connsTotal.Inc()
	s.metrics.connsOpen.Add(1)
	defer func() {
		s.metrics.connsOpen.Add(-1)
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		_ = conn.Close()
	}()
	// One session per connection: the connection's transaction scope.
	// Closing the session on exit rolls back an open transaction if the
	// client disconnected mid-transaction — without touching any other
	// connection's session.
	exec := s.exec
	if se, ok := s.exec.(core.SessionExecutor); ok {
		sess := se.OpenSession()
		defer func() { _ = sess.Close() }()
		exec = sess
	}
	// stmts is the connection's prepared-statement table: statements live
	// exactly as long as the connection (= the session), like on a real
	// server. Closing the connection releases them with the session.
	stmts := make(map[string]core.Statement)
	cc := countingConn{Conn: conn, m: s.metrics}
	rd := bufio.NewReader(cc)
	wr := bufio.NewWriter(cc)
	for {
		line, err := rd.ReadString('\n')
		if err != nil {
			return
		}
		line = strings.TrimRight(line, "\r\n")
		// The latency window is read-to-flush: it covers dispatch,
		// execution (adjudication included on a diverse endpoint) and
		// response serialization.
		start := time.Now()
		frame := "other"
		switch {
		case strings.HasPrefix(line, "EXEC "):
			frame = "EXEC"
			handleExec(exec, wr, strings.TrimPrefix(line, "EXEC "))
		case strings.HasPrefix(line, "PREPARE "):
			frame = "PREPARE"
			handlePrepare(exec, wr, stmts, strings.TrimPrefix(line, "PREPARE "))
		case strings.HasPrefix(line, "BIND "):
			frame = "BIND"
			handleBind(wr, stmts, strings.TrimPrefix(line, "BIND "))
		case strings.HasPrefix(line, "CLOSE "):
			frame = "CLOSE"
			name := strings.TrimSpace(strings.TrimPrefix(line, "CLOSE "))
			if st, ok := stmts[name]; ok {
				_ = st.Close()
				delete(stmts, name)
			}
			fmt.Fprint(wr, "OK 0 0 0\n.\n")
		case line == "PING":
			frame = "PING"
			fmt.Fprint(wr, "OK 0 0 0\n.\n")
		case line == "METRICS":
			frame = "METRICS"
			if reg := s.metricsRegistry(); reg != nil {
				doc := reg.Render()
				fmt.Fprintf(wr, "MET %d\n%s.\n", len(doc), doc)
			} else {
				fmt.Fprint(wr, "ERR metrics not enabled\n")
			}
		case line == "QUIT":
			s.metrics.record("QUIT", time.Since(start))
			_ = wr.Flush()
			return
		default:
			fmt.Fprintf(wr, "ERR unknown command\n")
		}
		flushErr := wr.Flush()
		s.metrics.record(frame, time.Since(start))
		if flushErr != nil {
			return
		}
	}
}

// handlePrepare services one PREPARE frame: "<name> <sql>".
func handlePrepare(exec core.Executor, wr *bufio.Writer, stmts map[string]core.Statement, req string) {
	name, sql, ok := strings.Cut(req, " ")
	if !ok || name == "" || strings.TrimSpace(sql) == "" {
		fmt.Fprint(wr, "ERR malformed PREPARE (want: PREPARE <name> <sql>)\n")
		return
	}
	pe, can := exec.(core.PreparedExecutor)
	if !can {
		fmt.Fprint(wr, "ERR endpoint does not support prepared statements\n")
		return
	}
	st, err := pe.Prepare(sql)
	if err != nil {
		fmt.Fprintf(wr, "ERR %s\n", strings.ReplaceAll(err.Error(), "\n", " "))
		return
	}
	if old, dup := stmts[name]; dup {
		_ = old.Close() // re-preparing a name replaces the statement
	}
	stmts[name] = st
	fmt.Fprintf(wr, "STMT %s %d\n", name, st.NumParams())
}

// handleBind services one BIND frame: "<name>[ <arg>\t<arg>...]" — it
// executes the named prepared statement with the decoded typed
// arguments and answers exactly like EXEC.
func handleBind(wr *bufio.Writer, stmts map[string]core.Statement, req string) {
	name, rest, _ := strings.Cut(req, " ")
	st, ok := stmts[strings.TrimSpace(name)]
	if !ok {
		fmt.Fprintf(wr, "ERR unknown prepared statement %q\n", strings.TrimSpace(name))
		return
	}
	var args []types.Value
	if rest = strings.TrimRight(rest, " "); rest != "" {
		for _, tok := range strings.Split(rest, "\t") {
			v, err := types.DecodeValue(tok)
			if err != nil {
				fmt.Fprintf(wr, "ERR %s\n", err.Error())
				return
			}
			args = append(args, v)
		}
	}
	res, lat, err := st.Exec(args...)
	writeResult(wr, res, lat, err)
}

func handleExec(exec core.Executor, wr *bufio.Writer, sql string) {
	res, lat, err := exec.Exec(sql)
	writeResult(wr, res, lat, err)
}

// writeResult renders one statement outcome in the EXEC response format.
func writeResult(wr *bufio.Writer, res *engine.Result, lat time.Duration, err error) {
	if err != nil {
		fmt.Fprintf(wr, "ERR %s\n", strings.ReplaceAll(err.Error(), "\n", " "))
		return
	}
	ncols, nrows := 0, 0
	if res != nil && res.Kind == engine.ResultRows {
		ncols, nrows = len(res.Columns), len(res.Rows)
	}
	fmt.Fprintf(wr, "OK %d %d %d\n", ncols, nrows, lat.Microseconds())
	if ncols > 0 {
		fmt.Fprintln(wr, strings.Join(res.Columns, "\t"))
		for _, row := range res.Rows {
			cells := make([]string, len(row))
			for i, v := range row {
				if v.IsNull() {
					cells[i] = nullToken
				} else {
					// Cells are framed by tabs and newlines; both flatten
					// to spaces (typed BIND arguments can smuggle them into
					// stored data, which inline SQL never could).
					cells[i] = cellFlattener.Replace(v.String())
				}
			}
			fmt.Fprintln(wr, strings.Join(cells, "\t"))
		}
	}
	fmt.Fprintln(wr, ".")
}

// Close stops the listener, closes open connections and waits for the
// connection goroutines to exit.
func (s *Server) Close() error {
	s.mu.Lock()
	s.closed = true
	ln := s.listener
	for c := range s.conns {
		_ = c.Close()
	}
	s.mu.Unlock()
	var err error
	if ln != nil {
		err = ln.Close()
	}
	s.wg.Wait()
	return err
}

// ---------------------------------------------------------------------------
// Client

// Result is a decoded wire response.
type Result struct {
	Columns []string
	Rows    [][]types.Value
	Latency time.Duration
}

// Client is a connection to a wire server.
type Client struct {
	mu     sync.Mutex
	conn   net.Conn
	rd     *bufio.Reader
	nextID int
}

// Dial connects to a wire server.
func Dial(addr string) (*Client, error) {
	conn, err := net.DialTimeout("tcp", addr, 5*time.Second)
	if err != nil {
		return nil, fmt.Errorf("wire dial: %w", err)
	}
	return &Client{conn: conn, rd: bufio.NewReader(conn)}, nil
}

// Exec sends one statement and decodes the response. SQL containing
// newlines is flattened to spaces.
func (c *Client) Exec(sql string) (*Result, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	flat := strings.ReplaceAll(strings.ReplaceAll(sql, "\r", " "), "\n", " ")
	if _, err := fmt.Fprintf(c.conn, "EXEC %s\n", flat); err != nil {
		return nil, fmt.Errorf("wire send: %w", err)
	}
	return c.readResult()
}

// readResult decodes one EXEC/BIND-style response. Caller holds c.mu.
func (c *Client) readResult() (*Result, error) {
	head, err := c.rd.ReadString('\n')
	if err != nil {
		return nil, fmt.Errorf("wire recv: %w", err)
	}
	head = strings.TrimRight(head, "\r\n")
	if strings.HasPrefix(head, "ERR ") {
		return nil, errors.New(strings.TrimPrefix(head, "ERR "))
	}
	var ncols, nrows int
	var latUS int64
	if _, err := fmt.Sscanf(head, "OK %d %d %d", &ncols, &nrows, &latUS); err != nil {
		return nil, fmt.Errorf("wire: malformed response %q", head)
	}
	res := &Result{Latency: time.Duration(latUS) * time.Microsecond}
	if ncols > 0 {
		colLine, err := c.rd.ReadString('\n')
		if err != nil {
			return nil, err
		}
		res.Columns = strings.Split(strings.TrimRight(colLine, "\r\n"), "\t")
		for i := 0; i < nrows; i++ {
			rowLine, err := c.rd.ReadString('\n')
			if err != nil {
				return nil, err
			}
			cells := strings.Split(strings.TrimRight(rowLine, "\r\n"), "\t")
			row := make([]types.Value, len(cells))
			for j, cell := range cells {
				row[j] = decodeCell(cell)
			}
			res.Rows = append(res.Rows, row)
		}
	}
	term, err := c.rd.ReadString('\n')
	if err != nil {
		return nil, err
	}
	if strings.TrimRight(term, "\r\n") != "." {
		return nil, fmt.Errorf("wire: missing terminator, got %q", term)
	}
	return res, nil
}

// Metrics sends a METRICS frame and returns the server's rendered
// Prometheus exposition document. It fails when the server has no
// metrics registry armed (ServeMetrics was not called).
func (c *Client) Metrics() (string, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, err := fmt.Fprint(c.conn, "METRICS\n"); err != nil {
		return "", fmt.Errorf("wire send: %w", err)
	}
	head, err := c.rd.ReadString('\n')
	if err != nil {
		return "", fmt.Errorf("wire recv: %w", err)
	}
	head = strings.TrimRight(head, "\r\n")
	if strings.HasPrefix(head, "ERR ") {
		return "", errors.New(strings.TrimPrefix(head, "ERR "))
	}
	var n int
	if _, err := fmt.Sscanf(head, "MET %d", &n); err != nil {
		return "", fmt.Errorf("wire: malformed METRICS response %q", head)
	}
	doc := make([]byte, n)
	if _, err := io.ReadFull(c.rd, doc); err != nil {
		return "", fmt.Errorf("wire recv: %w", err)
	}
	term, err := c.rd.ReadString('\n')
	if err != nil {
		return "", err
	}
	if strings.TrimRight(term, "\r\n") != "." {
		return "", fmt.Errorf("wire: missing terminator, got %q", term)
	}
	return string(doc), nil
}

// Stmt is a client-side handle on a server-side prepared statement.
type Stmt struct {
	c       *Client
	name    string
	sql     string
	nparams int
	closed  bool
}

// Prepare sends a PREPARE frame and returns a handle on the server-side
// statement. The SQL may contain ? or $n placeholders; the arguments of
// each execution travel typed in BIND frames — nothing is interpolated
// into the statement text on either side.
func (c *Client) Prepare(sql string) (*Stmt, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.nextID++
	name := fmt.Sprintf("s%d", c.nextID)
	flat := strings.ReplaceAll(strings.ReplaceAll(sql, "\r", " "), "\n", " ")
	if _, err := fmt.Fprintf(c.conn, "PREPARE %s %s\n", name, flat); err != nil {
		return nil, fmt.Errorf("wire send: %w", err)
	}
	head, err := c.rd.ReadString('\n')
	if err != nil {
		return nil, fmt.Errorf("wire recv: %w", err)
	}
	head = strings.TrimRight(head, "\r\n")
	if strings.HasPrefix(head, "ERR ") {
		return nil, errors.New(strings.TrimPrefix(head, "ERR "))
	}
	var gotName string
	var nparams int
	if _, err := fmt.Sscanf(head, "STMT %s %d", &gotName, &nparams); err != nil || gotName != name {
		return nil, fmt.Errorf("wire: malformed PREPARE response %q", head)
	}
	return &Stmt{c: c, name: name, sql: sql, nparams: nparams}, nil
}

// SQL returns the statement text as prepared.
func (st *Stmt) SQL() string { return st.sql }

// NumParams reports how many arguments Exec expects.
func (st *Stmt) NumParams() int { return st.nparams }

// Exec executes the prepared statement with the given typed arguments
// via a BIND frame and decodes the response.
func (st *Stmt) Exec(args ...types.Value) (*Result, error) {
	st.c.mu.Lock()
	defer st.c.mu.Unlock()
	if st.closed {
		return nil, errors.New("wire: statement is closed")
	}
	enc := make([]string, len(args))
	for i, v := range args {
		enc[i] = v.Encode()
	}
	req := "BIND " + st.name
	if len(enc) > 0 {
		req += " " + strings.Join(enc, "\t")
	}
	if _, err := fmt.Fprintf(st.c.conn, "%s\n", req); err != nil {
		return nil, fmt.Errorf("wire send: %w", err)
	}
	return st.c.readResult()
}

// Close deallocates the server-side statement.
func (st *Stmt) Close() error {
	st.c.mu.Lock()
	defer st.c.mu.Unlock()
	if st.closed {
		return nil
	}
	st.closed = true
	if _, err := fmt.Fprintf(st.c.conn, "CLOSE %s\n", st.name); err != nil {
		return fmt.Errorf("wire send: %w", err)
	}
	_, err := st.c.readResult()
	return err
}

// decodeCell reconstructs a typed value from its wire form. Numbers
// become numeric values; everything else stays a string.
func decodeCell(cell string) types.Value {
	if cell == nullToken {
		return types.Null()
	}
	if i, err := strconv.ParseInt(cell, 10, 64); err == nil {
		return types.NewInt(i)
	}
	if f, err := strconv.ParseFloat(cell, 64); err == nil {
		return types.NewFloat(f)
	}
	return types.NewString(cell)
}

// Close closes the connection.
func (c *Client) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	_, _ = fmt.Fprint(c.conn, "QUIT\n")
	return c.conn.Close()
}
