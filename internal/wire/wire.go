// Package wire implements a small line-oriented TCP protocol through
// which any core.Executor — a single simulated server, a non-diverse
// replication group, or the diverse middleware — can serve network
// clients. This is the "middleware for data replication with diverse SQL
// servers" deployment shape the paper's conclusions call for.
//
// When the executor supports sessions (core.SessionExecutor — every
// endpoint in this module does), each TCP connection gets its own
// session: transactions are scoped to the connection, concurrent
// connections execute in parallel, and a dropped connection rolls back
// only its own open transaction.
//
// Protocol (text, one request per line):
//
//	C: EXEC <sql>\n            (the SQL must not contain newlines)
//	S: OK <ncols> <nrows> <latency_us>\n
//	   <tab-separated column names>\n     (only when ncols > 0)
//	   <tab-separated row values>\n x nrows
//	   .\n
//	or
//	S: ERR <message>\n
//
// NULL cells are transmitted as the literal \N.
package wire

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"strconv"
	"strings"
	"sync"
	"time"

	"divsql/internal/core"
	"divsql/internal/engine"
	"divsql/internal/sql/types"
)

// nullToken is the wire representation of SQL NULL.
const nullToken = `\N`

// Server serves an Executor over TCP.
type Server struct {
	exec core.Executor

	mu       sync.Mutex
	listener net.Listener
	conns    map[net.Conn]bool
	wg       sync.WaitGroup
	closed   bool
}

// NewServer wraps an executor.
func NewServer(exec core.Executor) *Server {
	return &Server{exec: exec, conns: make(map[net.Conn]bool)}
}

// Listen starts accepting connections on addr ("host:port"; port 0
// picks a free port). It returns the bound address.
func (s *Server) Listen(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("wire listen: %w", err)
	}
	s.mu.Lock()
	s.listener = ln
	s.mu.Unlock()
	s.wg.Add(1)
	go s.acceptLoop(ln)
	return ln.Addr().String(), nil
}

func (s *Server) acceptLoop(ln net.Listener) {
	defer s.wg.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			_ = conn.Close()
			return
		}
		s.conns[conn] = true
		s.mu.Unlock()
		s.wg.Add(1)
		go s.serveConn(conn)
	}
}

func (s *Server) serveConn(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		_ = conn.Close()
	}()
	// One session per connection: the connection's transaction scope.
	// Closing the session on exit rolls back an open transaction if the
	// client disconnected mid-transaction — without touching any other
	// connection's session.
	exec := s.exec
	if se, ok := s.exec.(core.SessionExecutor); ok {
		sess := se.OpenSession()
		defer func() { _ = sess.Close() }()
		exec = sess
	}
	rd := bufio.NewReader(conn)
	wr := bufio.NewWriter(conn)
	for {
		line, err := rd.ReadString('\n')
		if err != nil {
			return
		}
		line = strings.TrimRight(line, "\r\n")
		switch {
		case strings.HasPrefix(line, "EXEC "):
			handleExec(exec, wr, strings.TrimPrefix(line, "EXEC "))
		case line == "PING":
			fmt.Fprint(wr, "OK 0 0 0\n.\n")
		case line == "QUIT":
			_ = wr.Flush()
			return
		default:
			fmt.Fprintf(wr, "ERR unknown command\n")
		}
		if err := wr.Flush(); err != nil {
			return
		}
	}
}

func handleExec(exec core.Executor, wr *bufio.Writer, sql string) {
	res, lat, err := exec.Exec(sql)
	if err != nil {
		fmt.Fprintf(wr, "ERR %s\n", strings.ReplaceAll(err.Error(), "\n", " "))
		return
	}
	ncols, nrows := 0, 0
	if res != nil && res.Kind == engine.ResultRows {
		ncols, nrows = len(res.Columns), len(res.Rows)
	}
	fmt.Fprintf(wr, "OK %d %d %d\n", ncols, nrows, lat.Microseconds())
	if ncols > 0 {
		fmt.Fprintln(wr, strings.Join(res.Columns, "\t"))
		for _, row := range res.Rows {
			cells := make([]string, len(row))
			for i, v := range row {
				if v.IsNull() {
					cells[i] = nullToken
				} else {
					cells[i] = strings.ReplaceAll(v.String(), "\t", " ")
				}
			}
			fmt.Fprintln(wr, strings.Join(cells, "\t"))
		}
	}
	fmt.Fprintln(wr, ".")
}

// Close stops the listener, closes open connections and waits for the
// connection goroutines to exit.
func (s *Server) Close() error {
	s.mu.Lock()
	s.closed = true
	ln := s.listener
	for c := range s.conns {
		_ = c.Close()
	}
	s.mu.Unlock()
	var err error
	if ln != nil {
		err = ln.Close()
	}
	s.wg.Wait()
	return err
}

// ---------------------------------------------------------------------------
// Client

// Result is a decoded wire response.
type Result struct {
	Columns []string
	Rows    [][]types.Value
	Latency time.Duration
}

// Client is a connection to a wire server.
type Client struct {
	mu   sync.Mutex
	conn net.Conn
	rd   *bufio.Reader
}

// Dial connects to a wire server.
func Dial(addr string) (*Client, error) {
	conn, err := net.DialTimeout("tcp", addr, 5*time.Second)
	if err != nil {
		return nil, fmt.Errorf("wire dial: %w", err)
	}
	return &Client{conn: conn, rd: bufio.NewReader(conn)}, nil
}

// Exec sends one statement and decodes the response. SQL containing
// newlines is flattened to spaces.
func (c *Client) Exec(sql string) (*Result, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	flat := strings.ReplaceAll(strings.ReplaceAll(sql, "\r", " "), "\n", " ")
	if _, err := fmt.Fprintf(c.conn, "EXEC %s\n", flat); err != nil {
		return nil, fmt.Errorf("wire send: %w", err)
	}
	head, err := c.rd.ReadString('\n')
	if err != nil {
		return nil, fmt.Errorf("wire recv: %w", err)
	}
	head = strings.TrimRight(head, "\r\n")
	if strings.HasPrefix(head, "ERR ") {
		return nil, errors.New(strings.TrimPrefix(head, "ERR "))
	}
	var ncols, nrows int
	var latUS int64
	if _, err := fmt.Sscanf(head, "OK %d %d %d", &ncols, &nrows, &latUS); err != nil {
		return nil, fmt.Errorf("wire: malformed response %q", head)
	}
	res := &Result{Latency: time.Duration(latUS) * time.Microsecond}
	if ncols > 0 {
		colLine, err := c.rd.ReadString('\n')
		if err != nil {
			return nil, err
		}
		res.Columns = strings.Split(strings.TrimRight(colLine, "\r\n"), "\t")
		for i := 0; i < nrows; i++ {
			rowLine, err := c.rd.ReadString('\n')
			if err != nil {
				return nil, err
			}
			cells := strings.Split(strings.TrimRight(rowLine, "\r\n"), "\t")
			row := make([]types.Value, len(cells))
			for j, cell := range cells {
				row[j] = decodeCell(cell)
			}
			res.Rows = append(res.Rows, row)
		}
	}
	term, err := c.rd.ReadString('\n')
	if err != nil {
		return nil, err
	}
	if strings.TrimRight(term, "\r\n") != "." {
		return nil, fmt.Errorf("wire: missing terminator, got %q", term)
	}
	return res, nil
}

// decodeCell reconstructs a typed value from its wire form. Numbers
// become numeric values; everything else stays a string.
func decodeCell(cell string) types.Value {
	if cell == nullToken {
		return types.Null()
	}
	if i, err := strconv.ParseInt(cell, 10, 64); err == nil {
		return types.NewInt(i)
	}
	if f, err := strconv.ParseFloat(cell, 64); err == nil {
		return types.NewFloat(f)
	}
	return types.NewString(cell)
}

// Close closes the connection.
func (c *Client) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	_, _ = fmt.Fprint(c.conn, "QUIT\n")
	return c.conn.Close()
}
