package wire

import (
	"net"
	"time"

	"divsql/internal/obs"
)

// This file is the wire server's observability surface: per-frame-type
// request counters and end-to-end latency histograms (read-to-flush,
// so they include adjudication and response serialization), connection
// gauges, and byte counters on the raw sockets. All instruments are
// atomic, so the per-request cost is a few uncontended atomic adds.
//
// It also implements the METRICS introspection frame:
//
//	C: METRICS\n
//	S: MET <nbytes>\n
//	   <nbytes bytes of Prometheus text exposition>
//	   .\n
//	or ERR metrics not enabled\n
//
// The frame serves the same registry as divsqld's HTTP /metrics, so a
// sqldriver/CLI client can introspect a deployment without a second
// port. It is armed with Server.ServeMetrics.

// frameKinds is the fixed label set of the request counters and latency
// histograms. Unrecognized commands are counted under "other".
var frameKinds = []string{
	"EXEC", "PREPARE", "BIND", "CLOSE", "PING", "METRICS", "QUIT",
	"BATCH", "SESSION", "DETACH", "SHARDS", "other",
}

// frameStats is one frame type's instruments.
type frameStats struct {
	reqs obs.Counter
	lat  *obs.Histogram
}

// wireMetrics holds the server's live instruments.
type wireMetrics struct {
	frames     map[string]*frameStats
	connsOpen  obs.Gauge
	connsTotal obs.Counter
	bytesIn    obs.Counter
	bytesOut   obs.Counter
}

func newWireMetrics() *wireMetrics {
	m := &wireMetrics{frames: make(map[string]*frameStats, len(frameKinds))}
	for _, k := range frameKinds {
		m.frames[k] = &frameStats{lat: obs.NewHistogram(obs.DefBuckets()...)}
	}
	return m
}

// record counts one serviced frame and its end-to-end latency.
func (m *wireMetrics) record(frame string, d time.Duration) {
	fs, ok := m.frames[frame]
	if !ok {
		fs = m.frames["other"]
	}
	fs.reqs.Inc()
	fs.lat.Observe(d)
}

// countingConn wraps a connection to count bytes moved on the socket.
type countingConn struct {
	net.Conn
	m *wireMetrics
}

func (c countingConn) Read(p []byte) (int, error) {
	n, err := c.Conn.Read(p)
	c.m.bytesIn.Add(uint64(n))
	return n, err
}

func (c countingConn) Write(p []byte) (int, error) {
	n, err := c.Conn.Write(p)
	c.m.bytesOut.Add(uint64(n))
	return n, err
}

// ServeMetrics arms the METRICS frame: clients sending METRICS receive
// the registry's rendered exposition. Call before Listen; a nil registry
// (the default) answers METRICS with an error.
func (s *Server) ServeMetrics(reg *obs.Registry) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.metricsReg = reg
}

// metricsRegistry reads the armed registry.
func (s *Server) metricsRegistry() *obs.Registry {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.metricsReg
}

// MetricsCollector returns the wire server's obs collector.
func (s *Server) MetricsCollector() obs.Collector {
	m := s.metrics
	return obs.NewCollector("wire", func(f *obs.Feed) {
		for _, k := range frameKinds {
			fs := m.frames[k]
			f.Count("divsql_wire_requests_total",
				"Wire requests serviced, by frame type.", fs.reqs.Value(),
				obs.L("frame", k))
			f.Histo("divsql_wire_request_duration_seconds",
				"End-to-end request latency (read to flush), by frame type.",
				fs.lat, obs.L("frame", k))
		}
		f.Gauge("divsql_wire_open_connections",
			"Currently open client connections.", float64(m.connsOpen.Value()))
		f.Count("divsql_wire_connections_total",
			"Client connections accepted.", m.connsTotal.Value())
		f.Count("divsql_wire_bytes_in_total",
			"Bytes read from client sockets.", m.bytesIn.Value())
		f.Count("divsql_wire_bytes_out_total",
			"Bytes written to client sockets.", m.bytesOut.Value())
	})
}
