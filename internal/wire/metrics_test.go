package wire

import (
	"strings"
	"testing"

	"divsql/internal/obs"
	"divsql/internal/sql/types"
)

func TestMetricsFrameDisabledByDefault(t *testing.T) {
	addr, _ := startServer(t)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Metrics(); err == nil || !strings.Contains(err.Error(), "not enabled") {
		t.Fatalf("want 'metrics not enabled' error, got %v", err)
	}
	// The connection survives the error response.
	if _, err := c.Exec("CREATE TABLE T (A INT)"); err != nil {
		t.Fatalf("exec after METRICS error: %v", err)
	}
}

func TestMetricsFrameAndWireCollector(t *testing.T) {
	addr, ws := startServer(t)
	reg := obs.NewRegistry()
	reg.Register(ws.MetricsCollector())
	ws.ServeMetrics(reg)

	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	if _, err := c.Exec("CREATE TABLE T (A INT PRIMARY KEY)"); err != nil {
		t.Fatal(err)
	}
	st, err := c.Prepare("INSERT INTO T VALUES (?)")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := st.Exec(types.NewInt(int64(i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Exec("SELECT A FROM T WHERE A = 1"); err != nil {
		t.Fatal(err)
	}

	doc, err := c.Metrics()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		`divsql_wire_requests_total{frame="EXEC"} 2`,
		`divsql_wire_requests_total{frame="PREPARE"} 1`,
		`divsql_wire_requests_total{frame="BIND"} 3`,
		`divsql_wire_requests_total{frame="CLOSE"} 1`,
		`divsql_wire_request_duration_seconds_bucket{frame="EXEC",le="+Inf"} 2`,
		"divsql_wire_open_connections 1",
		"divsql_wire_connections_total 1",
		"divsql_wire_bytes_in_total",
		"divsql_wire_bytes_out_total",
	} {
		if !strings.Contains(doc, want) {
			t.Errorf("METRICS document missing %q\n%s", want, doc)
		}
	}
	// Bytes must have moved in both directions by now.
	if ws.metrics.bytesIn.Value() == 0 || ws.metrics.bytesOut.Value() == 0 {
		t.Errorf("byte counters not moving: in=%d out=%d",
			ws.metrics.bytesIn.Value(), ws.metrics.bytesOut.Value())
	}
	// A second METRICS call sees the first one counted.
	doc2, err := c.Metrics()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(doc2, `divsql_wire_requests_total{frame="METRICS"} 1`) {
		t.Errorf("second METRICS document missing first METRICS count\n%s", doc2)
	}
}
