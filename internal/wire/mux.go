// Client-side session multiplexing: a Mux is one TCP connection
// carrying many concurrent sessions. Every request travels tagged; a
// demultiplexing reader goroutine matches responses (which complete out
// of order across sessions) back to their callers. This is how a pool
// of application threads shares a handful of connections instead of one
// connection each.
package wire

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"strings"
	"sync"
	"time"

	"divsql/internal/sql/types"
)

// muxResp is one decoded response delivered to a waiting caller.
type muxResp struct {
	res  *Result // EXEC/BIND/CLOSE/DETACH-style responses
	line string  // single-line responses (STMT, SESS)
	err  error
}

// Mux is a multiplexed client connection: any number of sessions, each
// its own transaction scope, over one TCP connection. All methods are
// safe for concurrent use.
type Mux struct {
	conn net.Conn

	wmu     sync.Mutex // serializes request writes
	mu      sync.Mutex // guards pending, nextTag, closed, readErr
	pending map[string]chan muxResp
	nextTag uint64
	closed  bool
	readErr error
}

// DialMux connects a multiplexed client.
func DialMux(addr string) (*Mux, error) {
	conn, err := net.DialTimeout("tcp", addr, 5*time.Second)
	if err != nil {
		return nil, fmt.Errorf("wire dial: %w", err)
	}
	m := &Mux{conn: conn, pending: make(map[string]chan muxResp)}
	go m.readLoop()
	return m, nil
}

// register allocates a tag and its response channel.
func (m *Mux) register() (string, chan muxResp, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return "", nil, errors.New("wire: mux is closed")
	}
	if m.readErr != nil {
		return "", nil, m.readErr
	}
	m.nextTag++
	tag := fmt.Sprintf("@%d", m.nextTag)
	ch := make(chan muxResp, 1)
	m.pending[tag] = ch
	return tag, ch, nil
}

// roundTrip sends one tagged request line and waits for its response.
func (m *Mux) roundTrip(line string) (muxResp, error) {
	tag, ch, err := m.register()
	if err != nil {
		return muxResp{}, err
	}
	m.wmu.Lock()
	_, err = fmt.Fprintf(m.conn, "%s %s\n", tag, line)
	m.wmu.Unlock()
	if err != nil {
		m.mu.Lock()
		delete(m.pending, tag)
		m.mu.Unlock()
		return muxResp{}, fmt.Errorf("wire send: %w", err)
	}
	return <-ch, nil
}

// readLoop is the demultiplexer: it decodes complete responses and
// delivers each to the caller waiting on its tag. A read error fails
// every pending and future call.
func (m *Mux) readLoop() {
	rd := newMuxReader(m.conn)
	for {
		tag, resp, err := rd.next()
		if err != nil {
			m.mu.Lock()
			m.readErr = err
			for t, ch := range m.pending {
				ch <- muxResp{err: err}
				delete(m.pending, t)
			}
			m.mu.Unlock()
			return
		}
		m.mu.Lock()
		ch, ok := m.pending[tag]
		delete(m.pending, tag)
		m.mu.Unlock()
		if ok {
			ch <- resp
		}
	}
}

// muxReader decodes complete tagged responses off the socket.
type muxReader struct {
	rd *bufio.Reader
}

func newMuxReader(conn net.Conn) *muxReader {
	return &muxReader{rd: bufio.NewReader(conn)}
}

// next reads one response: its tag, and either a decoded Result, an
// application error, or a single-line response (STMT/SESS). The error
// return is the transport failing — it ends the mux.
func (r *muxReader) next() (string, muxResp, error) {
	head, err := r.rd.ReadString('\n')
	if err != nil {
		return "", muxResp{}, fmt.Errorf("wire recv: %w", err)
	}
	head = strings.TrimRight(head, "\r\n")
	var tag string
	if strings.HasPrefix(head, "@") {
		if i := strings.IndexByte(head, ' '); i > 1 {
			tag, head = head[:i], head[i+1:]
		}
	}
	switch {
	case strings.HasPrefix(head, "ERR "):
		return tag, muxResp{err: errors.New(strings.TrimPrefix(head, "ERR "))}, nil
	case strings.HasPrefix(head, "OK "):
		var ncols, nrows int
		var latUS, affected int64
		if _, err := fmt.Sscanf(head, "OK %d %d %d %d", &ncols, &nrows, &latUS, &affected); err != nil {
			if _, err := fmt.Sscanf(head, "OK %d %d %d", &ncols, &nrows, &latUS); err != nil {
				return tag, muxResp{}, fmt.Errorf("wire: malformed response %q", head)
			}
		}
		res := &Result{Latency: time.Duration(latUS) * time.Microsecond, Affected: affected}
		if err := readResultBody(r.rd, res, ncols, nrows); err != nil {
			return tag, muxResp{}, err
		}
		return tag, muxResp{res: res}, nil
	case strings.HasPrefix(head, "STMT ") || strings.HasPrefix(head, "SESS "):
		return tag, muxResp{line: head}, nil
	default:
		return tag, muxResp{}, fmt.Errorf("wire: unexpected response %q", head)
	}
}

// Close closes the connection, failing any in-flight calls.
func (m *Mux) Close() error {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return nil
	}
	m.closed = true
	m.mu.Unlock()
	m.wmu.Lock()
	_, _ = fmt.Fprint(m.conn, "QUIT\n")
	m.wmu.Unlock()
	return m.conn.Close()
}

// Session opens one multiplexed session: its own transaction scope and
// prepared-statement table on the server, sharing this Mux's TCP
// connection with every other session.
func (m *Mux) Session() (*MuxSession, error) {
	resp, err := m.roundTrip("SESSION")
	if err != nil {
		return nil, err
	}
	if resp.err != nil {
		return nil, resp.err
	}
	var sid int
	if _, err := fmt.Sscanf(resp.line, "SESS %d", &sid); err != nil {
		return nil, fmt.Errorf("wire: malformed SESSION response %q", resp.line)
	}
	return &MuxSession{m: m, sid: sid}, nil
}

// MuxSession is one session of a Mux. Its Exec/Prepare calls may
// interleave with other sessions' on the wire; within the session they
// execute in order.
type MuxSession struct {
	m      *Mux
	sid    int
	mu     sync.Mutex
	nextID int
	closed bool
}

// Exec executes one statement in this session.
func (s *MuxSession) Exec(sql string) (*Result, error) {
	flat := strings.ReplaceAll(strings.ReplaceAll(sql, "\r", " "), "\n", " ")
	resp, err := s.m.roundTrip(fmt.Sprintf("#%d EXEC %s", s.sid, flat))
	if err != nil {
		return nil, err
	}
	return resp.res, resp.err
}

// Close detaches the session server-side, rolling back its open
// transaction. The Mux connection stays up for the other sessions.
func (s *MuxSession) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	s.mu.Unlock()
	resp, err := s.m.roundTrip(fmt.Sprintf("DETACH %d", s.sid))
	if err != nil {
		return err
	}
	return resp.err
}

// Prepare prepares a statement in this session.
func (s *MuxSession) Prepare(sql string) (*MuxStmt, error) {
	s.mu.Lock()
	s.nextID++
	name := fmt.Sprintf("m%d_%d", s.sid, s.nextID)
	s.mu.Unlock()
	flat := strings.ReplaceAll(strings.ReplaceAll(sql, "\r", " "), "\n", " ")
	resp, err := s.m.roundTrip(fmt.Sprintf("#%d PREPARE %s %s", s.sid, name, flat))
	if err != nil {
		return nil, err
	}
	if resp.err != nil {
		return nil, resp.err
	}
	var gotName string
	var nparams int
	if _, err := fmt.Sscanf(resp.line, "STMT %s %d", &gotName, &nparams); err != nil || gotName != name {
		return nil, fmt.Errorf("wire: malformed PREPARE response %q", resp.line)
	}
	return &MuxStmt{s: s, name: name, sql: sql, nparams: nparams}, nil
}

// MuxStmt is a prepared statement of one MuxSession.
type MuxStmt struct {
	s       *MuxSession
	name    string
	sql     string
	nparams int
	mu      sync.Mutex
	closed  bool
}

// SQL returns the statement text as prepared.
func (st *MuxStmt) SQL() string { return st.sql }

// NumParams reports how many arguments Exec expects.
func (st *MuxStmt) NumParams() int { return st.nparams }

// Exec executes the prepared statement with typed arguments.
func (st *MuxStmt) Exec(args ...types.Value) (*Result, error) {
	st.mu.Lock()
	if st.closed {
		st.mu.Unlock()
		return nil, errors.New("wire: statement is closed")
	}
	st.mu.Unlock()
	enc := make([]string, len(args))
	for i, v := range args {
		enc[i] = v.Encode()
	}
	req := fmt.Sprintf("#%d BIND %s", st.s.sid, st.name)
	if len(enc) > 0 {
		req += " " + strings.Join(enc, "\t")
	}
	resp, err := st.s.m.roundTrip(req)
	if err != nil {
		return nil, err
	}
	return resp.res, resp.err
}

// Close deallocates the server-side statement.
func (st *MuxStmt) Close() error {
	st.mu.Lock()
	if st.closed {
		st.mu.Unlock()
		return nil
	}
	st.closed = true
	st.mu.Unlock()
	resp, err := st.s.m.roundTrip(fmt.Sprintf("#%d CLOSE %s", st.s.sid, st.name))
	if err != nil {
		return err
	}
	return resp.err
}
