package wire

import (
	"strings"
	"sync"
	"testing"

	"divsql/internal/dialect"
	"divsql/internal/server"
)

func startServer(t *testing.T) (string, *Server) {
	t.Helper()
	srv, err := server.New(dialect.PG, nil)
	if err != nil {
		t.Fatal(err)
	}
	ws := NewServer(srv)
	addr, err := ws.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = ws.Close() })
	return addr, ws
}

func TestExecRoundTrip(t *testing.T) {
	addr, _ := startServer(t)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	if _, err := c.Exec("CREATE TABLE T (A INT, S VARCHAR(10))"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Exec("INSERT INTO T VALUES (1, 'x'), (2, NULL)"); err != nil {
		t.Fatal(err)
	}
	res, err := c.Exec("SELECT A, S FROM T ORDER BY A")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Columns) != 2 || res.Columns[0] != "A" {
		t.Errorf("columns: %v", res.Columns)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows: %v", res.Rows)
	}
	if res.Rows[0][0].I != 1 || res.Rows[0][1].S != "x" {
		t.Errorf("row 0: %v", res.Rows[0])
	}
	if !res.Rows[1][1].IsNull() {
		t.Errorf("NULL round trip failed: %v", res.Rows[1][1])
	}
	if res.Latency <= 0 {
		t.Error("latency not transmitted")
	}
}

func TestErrorsPropagate(t *testing.T) {
	addr, _ := startServer(t)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Exec("SELECT A FROM MISSING"); err == nil {
		t.Error("server error must reach the client")
	}
	// The connection stays usable after an error.
	if _, err := c.Exec("CREATE TABLE U (A INT)"); err != nil {
		t.Errorf("connection unusable after error: %v", err)
	}
}

func TestMultilineSQLFlattened(t *testing.T) {
	addr, _ := startServer(t)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Exec("CREATE TABLE M\n(A INT,\n B INT)"); err != nil {
		t.Fatalf("multiline SQL: %v", err)
	}
}

func TestConcurrentClients(t *testing.T) {
	addr, _ := startServer(t)
	setup, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := setup.Exec("CREATE TABLE C (A INT)"); err != nil {
		t.Fatal(err)
	}
	_ = setup.Close()

	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(n int) {
			defer wg.Done()
			c, err := Dial(addr)
			if err != nil {
				errs <- err
				return
			}
			defer c.Close()
			for j := 0; j < 10; j++ {
				if _, err := c.Exec("SELECT COUNT(*) AS N FROM C"); err != nil {
					errs <- err
					return
				}
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

func TestTabsInValuesSanitized(t *testing.T) {
	addr, _ := startServer(t)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Exec("CREATE TABLE TB (S VARCHAR(20))"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Exec("INSERT INTO TB VALUES ('a\tb')"); err != nil {
		t.Fatal(err)
	}
	res, err := c.Exec("SELECT S FROM TB")
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(res.Rows[0][0].S, "\t") {
		t.Error("tab not sanitized in wire format")
	}
}

func TestServerCloseUnblocksClients(t *testing.T) {
	addr, ws := startServer(t)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := ws.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Exec("SELECT 1 AS X"); err == nil {
		t.Error("exec after server close must fail")
	}
}
