//go:build !race

package wire

// raceEnabled: see race_test.go.
const raceEnabled = false
