package wire

import (
	"strings"
	"testing"
	"time"
)

// TestConnectionsHaveIndependentTransactions: two wire clients against
// one server each get their own session — BEGIN on one connection does
// not open, close or disturb a transaction on the other.
func TestConnectionsHaveIndependentTransactions(t *testing.T) {
	addr, _ := startServer(t)
	a, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	mustC := func(c *Client, q string) {
		t.Helper()
		if _, err := c.Exec(q); err != nil {
			t.Fatalf("%q: %v", q, err)
		}
	}
	mustC(a, "CREATE TABLE T (A INT)")
	mustC(a, "BEGIN TRANSACTION")
	// b has no transaction: a's BEGIN must not leak across connections.
	if _, err := b.Exec("COMMIT"); err == nil || !strings.Contains(err.Error(), "no transaction") {
		t.Fatalf("COMMIT on b: %v (want no-transaction error)", err)
	}
	mustC(a, "INSERT INTO T VALUES (1)")
	mustC(a, "ROLLBACK")

	mustC(b, "BEGIN TRANSACTION")
	mustC(b, "INSERT INTO T VALUES (2)")
	// a rolling back its own (new) transaction must not touch b's.
	mustC(a, "BEGIN TRANSACTION")
	mustC(a, "ROLLBACK")
	mustC(b, "COMMIT")

	res, err := a.Exec("SELECT A FROM T")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0].I != 2 {
		t.Fatalf("want only b's committed row: %v", res.Rows)
	}
}

// TestDroppedConnectionRollsBackOnlyItsOwnTransaction: a client that
// disconnects mid-transaction loses that transaction — and nothing else.
func TestDroppedConnectionRollsBackOnlyItsOwnTransaction(t *testing.T) {
	addr, _ := startServer(t)
	a, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	mustC := func(c *Client, q string) {
		t.Helper()
		if _, err := c.Exec(q); err != nil {
			t.Fatalf("%q: %v", q, err)
		}
	}
	mustC(b, "CREATE TABLE TA (A INT)")
	mustC(b, "CREATE TABLE TB (A INT)")

	// b opens a transaction that must survive a's disconnect.
	mustC(b, "BEGIN TRANSACTION")
	mustC(b, "INSERT INTO TB VALUES (7)")

	mustC(a, "BEGIN TRANSACTION")
	mustC(a, "INSERT INTO TA VALUES (1)")
	// Drop a's connection abruptly: the server must roll back a's open
	// transaction (its session closes) without touching b's.
	_ = a.Close()

	// b's own transaction is unaffected by a's disconnect: commit it.
	mustC(b, "COMMIT")

	// The rollback happens asynchronously when the server notices the
	// disconnect; poll through b until TA is empty again.
	deadline := time.Now().Add(5 * time.Second)
	for {
		res, err := b.Exec("SELECT COUNT(*) AS N FROM TA")
		if err != nil {
			t.Fatal(err)
		}
		if res.Rows[0][0].I == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("a's transaction not rolled back: TA has %d rows", res.Rows[0][0].I)
		}
		time.Sleep(10 * time.Millisecond)
	}

	// b's transaction committed: TB keeps its row.
	res, err := b.Exec("SELECT COUNT(*) AS N FROM TB")
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].I != 1 {
		t.Errorf("b's committed row lost: %d", res.Rows[0][0].I)
	}
}
