//go:build race

package wire

// raceEnabled reports whether this test binary was built with the race
// detector; timing-ratio guards skip under it (instrumentation inflates
// per-statement CPU cost, which shrinks the round-trip saving the
// guards measure).
const raceEnabled = true
