package wire

import (
	"testing"
	"time"

	"divsql/internal/dialect"
	"divsql/internal/server"
)

// The pipelining benchmarks quantify what the BATCH envelope buys: a
// per-round-trip client pays one socket round trip per statement, a
// pipelined client pays one per burst. The guard test below holds the
// ratio above 2x so a regression in the batch path fails CI.

func benchWireClient(tb testing.TB) *Client {
	tb.Helper()
	srv, err := server.New(dialect.PG, nil)
	if err != nil {
		tb.Fatal(err)
	}
	ws := NewServer(srv)
	addr, err := ws.Listen("127.0.0.1:0")
	if err != nil {
		tb.Fatal(err)
	}
	tb.Cleanup(func() { _ = ws.Close() })
	c, err := Dial(addr)
	if err != nil {
		tb.Fatal(err)
	}
	tb.Cleanup(func() { _ = c.Close() })
	if _, err := c.Exec("CREATE TABLE W (A INT)"); err != nil {
		tb.Fatal(err)
	}
	return c
}

func BenchmarkWireRoundTrip(b *testing.B) {
	c := benchWireClient(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Exec("INSERT INTO W VALUES (1)"); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkWirePipelined(b *testing.B) {
	c := benchWireClient(b)
	// Bursts of 128 statements per BATCH envelope.
	const burst = 128
	sqls := make([]string, burst)
	for i := range sqls {
		sqls[i] = "INSERT INTO W VALUES (1)"
	}
	b.ReportAllocs()
	b.ResetTimer()
	done := 0
	for done < b.N {
		n := burst
		if rem := b.N - done; rem < n {
			n = rem
		}
		_, errs := c.ExecBatch(sqls[:n])
		for _, err := range errs {
			if err != nil {
				b.Fatal(err)
			}
		}
		done += n
	}
}

func TestBatchPipeliningSpeedup(t *testing.T) {
	// Acceptance bar: a pipelined burst must beat the same statements
	// executed as individual round trips by more than 2x. Timing tests
	// are noisy, so take the best of three attempts before judging.
	if raceEnabled {
		t.Skip("race instrumentation inflates per-statement cost, drowning the round-trip saving this guard measures")
	}
	const n = 400
	sqls := make([]string, n)
	for i := range sqls {
		sqls[i] = "SELECT 1 AS X"
	}
	best := 0.0
	for attempt := 0; attempt < 3 && best <= 2.0; attempt++ {
		c := benchWireClient(t)
		start := time.Now()
		for _, sql := range sqls {
			if _, err := c.Exec(sql); err != nil {
				t.Fatal(err)
			}
		}
		serial := time.Since(start)
		start = time.Now()
		_, errs := c.ExecBatch(sqls)
		pipelined := time.Since(start)
		for _, err := range errs {
			if err != nil {
				t.Fatal(err)
			}
		}
		ratio := float64(serial) / float64(pipelined)
		t.Logf("attempt %d: serial %v, pipelined %v, %.1fx", attempt, serial, pipelined, ratio)
		if ratio > best {
			best = ratio
		}
	}
	if best <= 2.0 {
		t.Errorf("batch pipelining speedup %.2fx, want > 2x", best)
	}
}
