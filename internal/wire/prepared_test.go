package wire

import (
	"strings"
	"testing"

	"divsql/internal/dialect"
	"divsql/internal/server"
	"divsql/internal/sql/types"
)

func dialPrepared(t *testing.T, name string) *Client {
	t.Helper()
	srv, err := server.New(dialect.ServerName(name), nil)
	if err != nil {
		t.Fatal(err)
	}
	ws := NewServer(srv)
	addr, err := ws.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = ws.Close() })
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = c.Close() })
	return c
}

func TestWirePrepareBindRoundTrip(t *testing.T) {
	c := dialPrepared(t, "PG")
	if _, err := c.Exec("CREATE TABLE T (A INT, S VARCHAR(20))"); err != nil {
		t.Fatal(err)
	}
	ins, err := c.Prepare("INSERT INTO T VALUES (?, ?)")
	if err != nil {
		t.Fatal(err)
	}
	if ins.NumParams() != 2 {
		t.Fatalf("NumParams = %d", ins.NumParams())
	}
	// Hostile payloads survive the typed path: tabs, quotes, newlines.
	hostile := "a\tb'c\nd,e"
	if _, err := ins.Exec(types.NewInt(1), types.NewString(hostile)); err != nil {
		t.Fatal(err)
	}
	if _, err := ins.Exec(types.NewInt(2), types.Null()); err != nil {
		t.Fatal(err)
	}
	sel, err := c.Prepare("SELECT S FROM T WHERE A = $1")
	if err != nil {
		t.Fatal(err)
	}
	res, err := sel.Exec(types.NewInt(1))
	if err != nil || len(res.Rows) != 1 {
		t.Fatalf("bound select: %+v %v", res, err)
	}
	// The wire flattens newlines in result cells (tab-separated rows);
	// everything else must round-trip.
	got := res.Rows[0][0].S
	if !strings.Contains(got, "b'c") || !strings.Contains(got, "d,e") {
		t.Errorf("hostile payload mangled: %q", got)
	}
	res, err = sel.Exec(types.NewInt(2))
	if err != nil || len(res.Rows) != 1 || !res.Rows[0][0].IsNull() {
		t.Fatalf("NULL round-trip: %+v %v", res, err)
	}
	if err := sel.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := sel.Exec(types.NewInt(1)); err == nil {
		t.Error("closed statement must reject execution")
	}
}

// Trailing spaces survive the frame: the typed encoding escapes spaces,
// so the protocol's whitespace handling cannot eat them. The endpoint is
// IB, whose bind rules leave trailing spaces alone (on PG the trim would
// be the server's own modeled coercion, not a wire artifact).
func TestWireBindPreservesTrailingSpaces(t *testing.T) {
	c := dialPrepared(t, "IB")
	if _, err := c.Exec("CREATE TABLE T (A INT, S VARCHAR(20))"); err != nil {
		t.Fatal(err)
	}
	ins, err := c.Prepare("INSERT INTO T VALUES (?, ?)")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ins.Exec(types.NewInt(3), types.NewString("pad  ")); err != nil {
		t.Fatal(err)
	}
	res, err := c.Exec("SELECT S FROM T WHERE A = 3")
	if err != nil || len(res.Rows) != 1 || res.Rows[0][0].S != "pad  " {
		t.Fatalf("trailing spaces lost on the wire: %+v %v", res, err)
	}
}

func TestWirePrepareErrors(t *testing.T) {
	c := dialPrepared(t, "PG")
	if _, err := c.Prepare("SELEC nonsense"); err == nil {
		t.Error("syntax error must surface at PREPARE")
	}
	if _, err := c.Exec("CREATE TABLE T (A INT)"); err != nil {
		t.Fatal(err)
	}
	st, err := c.Prepare("SELECT A FROM T WHERE A = ?")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.Exec(); err == nil || !strings.Contains(err.Error(), "bind error") {
		t.Errorf("missing argument: %v", err)
	}
}
