package wire

import (
	"fmt"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"divsql/internal/sql/types"
)

func TestAffectedRowsRoundTrip(t *testing.T) {
	// Satellite: the wire protocol carries the affected-row count of
	// INSERT/UPDATE/DELETE end to end.
	addr, _ := startServer(t)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Exec("CREATE TABLE T (A INT)"); err != nil {
		t.Fatal(err)
	}
	res, err := c.Exec("INSERT INTO T VALUES (1), (2), (3)")
	if err != nil {
		t.Fatal(err)
	}
	if res.Affected != 3 {
		t.Errorf("INSERT affected = %d, want 3", res.Affected)
	}
	res, err = c.Exec("UPDATE T SET A = A + 1 WHERE A >= 2")
	if err != nil {
		t.Fatal(err)
	}
	if res.Affected != 2 {
		t.Errorf("UPDATE affected = %d, want 2", res.Affected)
	}
	res, err = c.Exec("DELETE FROM T WHERE A = 4")
	if err != nil {
		t.Fatal(err)
	}
	if res.Affected != 1 {
		t.Errorf("DELETE affected = %d, want 1", res.Affected)
	}
	// The prepared path carries it too.
	st, err := c.Prepare("UPDATE T SET A = A + ? ")
	if err != nil {
		t.Fatal(err)
	}
	pres, err := st.Exec(types.NewInt(10))
	if err != nil {
		t.Fatal(err)
	}
	if pres.Affected != 2 {
		t.Errorf("prepared UPDATE affected = %d, want 2", pres.Affected)
	}
	// Queries report zero.
	if res, err = c.Exec("SELECT A FROM T"); err != nil || res.Affected != 0 {
		t.Errorf("SELECT affected = %d (%v), want 0", res.Affected, err)
	}
}

func TestExecBatchPipelines(t *testing.T) {
	addr, _ := startServer(t)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	sqls := []string{
		"CREATE TABLE B (A INT)",
		"INSERT INTO B VALUES (1)",
		"SELECT A FROM B",
		"SELECT * FROM NO_SUCH_TABLE", // mid-batch error must not stop the rest
		"INSERT INTO B VALUES (2)",
	}
	results, errs := c.ExecBatch(sqls)
	if errs[0] != nil || errs[1] != nil || errs[2] != nil || errs[4] != nil {
		t.Fatalf("batch errors: %v", errs)
	}
	if errs[3] == nil {
		t.Error("bad statement in batch did not error")
	}
	if len(results[2].Rows) != 1 || results[2].Rows[0][0].I != 1 {
		t.Errorf("batch SELECT: %v", results[2].Rows)
	}
	if results[4].Affected != 1 {
		t.Errorf("batch INSERT affected = %d", results[4].Affected)
	}
	// The connection still works for ordinary frames after a batch.
	res, err := c.Exec("SELECT COUNT(*) AS N FROM B")
	if err != nil || res.Rows[0][0].I != 2 {
		t.Fatalf("after batch: %v %v", res, err)
	}
}

func TestMuxSessionsAreIndependentTransactions(t *testing.T) {
	addr, _ := startServer(t)
	m, err := DialMux(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	s1, err := m.Session()
	if err != nil {
		t.Fatal(err)
	}
	s2, err := m.Session()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s1.Exec("CREATE TABLE M (A INT)"); err != nil {
		t.Fatal(err)
	}
	if _, err := s1.Exec("BEGIN TRANSACTION"); err != nil {
		t.Fatal(err)
	}
	if _, err := s1.Exec("INSERT INTO M VALUES (1)"); err != nil {
		t.Fatal(err)
	}
	// s2, same TCP connection, is outside s1's transaction.
	res, err := s2.Exec("SELECT COUNT(*) AS N FROM M")
	if err != nil || res.Rows[0][0].I != 0 {
		t.Fatalf("s2 saw s1's uncommitted write: %v %v", res, err)
	}
	if _, err := s1.Exec("COMMIT"); err != nil {
		t.Fatal(err)
	}
	res, err = s2.Exec("SELECT COUNT(*) AS N FROM M")
	if err != nil || res.Rows[0][0].I != 1 {
		t.Fatalf("s2 after commit: %v %v", res, err)
	}
	// Prepared statements are session-scoped.
	st, err := s2.Prepare("INSERT INTO M VALUES (?)")
	if err != nil {
		t.Fatal(err)
	}
	pres, err := st.Exec(types.NewInt(7))
	if err != nil || pres.Affected != 1 {
		t.Fatalf("mux prepared exec: %v %v", pres, err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s2.Close(); err != nil {
		t.Fatal(err)
	}
	// A detached session rejects further frames.
	if _, err := s2.Exec("SELECT 1"); err == nil {
		t.Log("note: Exec after Close raced the detach; acceptable")
	}
}

func TestMuxConcurrentSessionsInterleave(t *testing.T) {
	// Out-of-order completion: many goroutines share one TCP connection,
	// each on its own session, and every response must reach its caller.
	addr, _ := startServer(t)
	m, err := DialMux(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	setup, err := m.Session()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := setup.Exec("CREATE TABLE C (W INT, V INT)"); err != nil {
		t.Fatal(err)
	}
	const workers = 8
	var wg sync.WaitGroup
	errs := make([]error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			s, err := m.Session()
			if err != nil {
				errs[w] = err
				return
			}
			defer s.Close()
			for i := 0; i < 20; i++ {
				if _, err := s.Exec(fmt.Sprintf("INSERT INTO C VALUES (%d, %d)", w, i)); err != nil {
					errs[w] = err
					return
				}
				res, err := s.Exec(fmt.Sprintf("SELECT COUNT(*) AS N FROM C WHERE W = %d", w))
				if err != nil {
					errs[w] = err
					return
				}
				if got := res.Rows[0][0].I; got != int64(i+1) {
					errs[w] = fmt.Errorf("worker %d iteration %d saw %d rows", w, i, got)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	for w, err := range errs {
		if err != nil {
			t.Errorf("worker %d: %v", w, err)
		}
	}
	res, err := setup.Exec("SELECT COUNT(*) AS N FROM C")
	if err != nil || res.Rows[0][0].I != workers*20 {
		t.Fatalf("total rows: %v %v", res, err)
	}
}

func TestOutOfOrderTaggedResponses(t *testing.T) {
	// Raw-protocol check: two sessions, the first holding a transaction,
	// frames pipelined to both in one write — the tags identify each
	// response regardless of arrival order.
	addr, _ := startServer(t)
	conn, err := net.DialTimeout("tcp", addr, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	rd := newMuxReader(conn)
	send := func(s string) {
		t.Helper()
		if _, err := fmt.Fprint(conn, s); err != nil {
			t.Fatal(err)
		}
	}
	recv := func() (string, muxResp) {
		t.Helper()
		tag, resp, err := rd.next()
		if err != nil {
			t.Fatal(err)
		}
		return tag, resp
	}
	send("@a SESSION\n")
	_, resp := recv()
	if resp.line != "SESS 1" {
		t.Fatalf("SESSION response %q %v", resp.line, resp.err)
	}
	send("BATCH 3\n@t1 EXEC CREATE TABLE O (A INT)\n@t2 #1 EXEC SELECT 1 AS X\n@t3 EXEC INSERT INTO O VALUES (9)\n")
	got := map[string]muxResp{}
	for i := 0; i < 3; i++ {
		tag, resp := recv()
		got[tag] = resp
	}
	for _, tag := range []string{"@t1", "@t2", "@t3"} {
		resp, ok := got[tag]
		if !ok || resp.err != nil {
			t.Fatalf("response for %s: %+v (have %v)", tag, resp, got)
		}
	}
	if got["@t2"].res.Rows[0][0].I != 1 {
		t.Errorf("tagged select: %v", got["@t2"].res.Rows)
	}
	if got["@t3"].res.Affected != 1 {
		t.Errorf("tagged insert affected: %d", got["@t3"].res.Affected)
	}
}

func TestMidBatchDropRollsBackOnlyThatConnection(t *testing.T) {
	// Satellite edge case: a connection dropped mid-batch, inside an open
	// transaction, rolls back exactly its own sessions' transactions —
	// a second connection's committed data is untouched.
	addr, ws := startServer(t)
	c1, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c1.Close()
	if _, err := c1.Exec("CREATE TABLE D (A INT)"); err != nil {
		t.Fatal(err)
	}
	if _, err := c1.Exec("INSERT INTO D VALUES (100)"); err != nil {
		t.Fatal(err)
	}

	// c2 opens a transaction on its root session AND on a multiplexed
	// session, writes through both, then drops mid-batch without COMMIT.
	conn, err := net.DialTimeout("tcp", addr, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	rd := newMuxReader(conn)
	roundTrip := func(line string) muxResp {
		t.Helper()
		if _, err := fmt.Fprintf(conn, "@x %s\n", line); err != nil {
			t.Fatal(err)
		}
		_, resp, err := rd.next()
		if err != nil {
			t.Fatal(err)
		}
		if resp.err != nil {
			t.Fatalf("%s: %v", line, resp.err)
		}
		return resp
	}
	roundTrip("SESSION") // sid 1
	if _, err := fmt.Fprint(conn, "BATCH 4\n@1 EXEC BEGIN TRANSACTION\n@2 EXEC INSERT INTO D VALUES (1)\n@3 #1 EXEC BEGIN TRANSACTION\n@4 #1 EXEC INSERT INTO D VALUES (2)\n"); err != nil {
		t.Fatal(err)
	}
	// Wait for all four responses so the writes definitely applied, then
	// drop the connection without COMMIT.
	for i := 0; i < 4; i++ {
		if _, resp, err := rd.next(); err != nil || resp.err != nil {
			t.Fatalf("batch response %d: %v %v", i, resp.err, err)
		}
	}
	_ = conn.Close()

	// The server notices the drop and rolls back both of c2's sessions.
	deadline := time.Now().Add(2 * time.Second)
	for {
		res, err := c1.Exec("SELECT COUNT(*) AS N FROM D")
		if err != nil {
			t.Fatal(err)
		}
		if res.Rows[0][0].I == 1 {
			break // only the committed row survives
		}
		if time.Now().After(deadline) {
			t.Fatalf("uncommitted rows survived the drop: %v", res.Rows)
		}
		time.Sleep(10 * time.Millisecond)
	}
	// c1's own session was untouched: it can still run a transaction.
	if _, err := c1.Exec("BEGIN TRANSACTION"); err != nil {
		t.Fatal(err)
	}
	if _, err := c1.Exec("INSERT INTO D VALUES (200)"); err != nil {
		t.Fatal(err)
	}
	if _, err := c1.Exec("COMMIT"); err != nil {
		t.Fatal(err)
	}
	res, err := c1.Exec("SELECT COUNT(*) AS N FROM D")
	if err != nil || res.Rows[0][0].I != 2 {
		t.Fatalf("after drop: %v %v", res, err)
	}
	_ = ws
}

func TestShardsFrame(t *testing.T) {
	addr, ws := startServer(t)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Shards(); err == nil || !strings.Contains(err.Error(), "not a sharded") {
		t.Fatalf("unarmed SHARDS: %v", err)
	}
	ws.ServeShards(func() string { return "2 shard(s)\nshard0: ok\n" })
	doc, err := c.Shards()
	if err != nil || !strings.Contains(doc, "shard0") {
		t.Fatalf("SHARDS: %q %v", doc, err)
	}
}
