package replication

import (
	"errors"
	"testing"

	"divsql/internal/dialect"
	"divsql/internal/fault"
	"divsql/internal/server"
	"divsql/internal/sql/ast"
)

func newGroup(t *testing.T, faults []fault.Fault, n int, autoRestart bool) *Group {
	t.Helper()
	servers := make([]*server.Server, 0, n)
	for i := 0; i < n; i++ {
		s, err := server.New(dialect.PG, faults)
		if err != nil {
			t.Fatal(err)
		}
		servers = append(servers, s)
	}
	g, err := NewGroup(autoRestart, servers...)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestEmptyGroupRejected(t *testing.T) {
	if _, err := NewGroup(true); !errors.Is(err, ErrNoReplicas) {
		t.Errorf("got %v", err)
	}
}

func TestUpdatesPropagateToBackups(t *testing.T) {
	g := newGroup(t, nil, 3, true)
	if _, _, err := g.Exec("CREATE TABLE T (A INT)"); err != nil {
		t.Fatal(err)
	}
	if _, _, err := g.Exec("INSERT INTO T VALUES (1)"); err != nil {
		t.Fatal(err)
	}
	m := g.Metrics()
	if m.Propagated != 4 { // 2 backups x 2 updates
		t.Errorf("propagated %d", m.Propagated)
	}
	res, _, err := g.Exec("SELECT A FROM T")
	if err != nil || len(res.Rows) != 1 {
		t.Fatalf("select: %v %v", res, err)
	}
}

func TestFailoverOnPrimaryCrash(t *testing.T) {
	faults := []fault.Fault{{
		BugID:   "crash",
		Server:  dialect.PG,
		Trigger: fault.Trigger{Table: "T", Flag: ast.FlagGroupBy},
		Effect:  fault.Effect{Kind: fault.EffectCrash},
	}}
	g := newGroup(t, faults, 2, true)
	if _, _, err := g.Exec("CREATE TABLE T (A INT)"); err != nil {
		t.Fatal(err)
	}
	if _, _, err := g.Exec("INSERT INTO T VALUES (1)"); err != nil {
		t.Fatal(err)
	}
	// Crashes the primary; the statement is retried on the promoted
	// backup — which carries the same fault (identical replicas!) and
	// crashes too; with auto-restart both recover in turn until the
	// retry budget runs out.
	_, _, err := g.Exec("SELECT A, COUNT(*) AS N FROM T GROUP BY A")
	if err == nil {
		t.Fatal("identical replicas share the fault; the statement cannot succeed")
	}
	if g.Metrics().Failovers == 0 {
		t.Error("no failover recorded")
	}
	// Non-triggering statements still work after recovery.
	res, _, err := g.Exec("SELECT A FROM T")
	if err != nil || len(res.Rows) != 1 {
		t.Fatalf("after failover: %v %v", res, err)
	}
}

func TestGroupDownWithoutRestart(t *testing.T) {
	faults := []fault.Fault{{
		BugID:   "crash",
		Server:  dialect.PG,
		Trigger: fault.Trigger{Table: "T", Flag: ast.FlagSelect},
		Effect:  fault.Effect{Kind: fault.EffectCrash},
	}}
	g := newGroup(t, faults, 2, false)
	if _, _, err := g.Exec("CREATE TABLE T (A INT)"); err != nil {
		t.Fatal(err)
	}
	if _, _, err := g.Exec("SELECT A FROM T"); !errors.Is(err, ErrGroupDown) {
		t.Errorf("want group down, got %v", err)
	}
}

// TestIncorrectResultsPassUnchecked demonstrates the shortcoming the
// paper describes: non-fail-stop failures are returned to the client and
// never detected by crash-only replication.
func TestIncorrectResultsPassUnchecked(t *testing.T) {
	faults := []fault.Fault{{
		BugID:   "wrong",
		Server:  dialect.PG,
		Trigger: fault.Trigger{Table: "T", Flag: ast.FlagSelect},
		Effect:  fault.Effect{Kind: fault.EffectMutateResult, Mutation: fault.MutOffByOne},
	}}
	g := newGroup(t, faults, 2, true)
	if _, _, err := g.Exec("CREATE TABLE T (A INT)"); err != nil {
		t.Fatal(err)
	}
	if _, _, err := g.Exec("INSERT INTO T VALUES (10)"); err != nil {
		t.Fatal(err)
	}
	res, _, err := g.Exec("SELECT A FROM T")
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].I != 11 {
		t.Fatalf("expected the WRONG value to reach the client, got %v", res.Rows[0][0])
	}
}

// TestIncorrectUpdatePropagates shows incorrect updates spreading to all
// replicas (the paper: "incorrect updates would be propagated to all the
// replicas").
func TestIncorrectUpdatePropagates(t *testing.T) {
	// The primary silently accepts an invalid INSERT; the backup gets
	// the same statement replayed. No comparison ever happens.
	faults := []fault.Fault{{
		BugID:   "accept",
		Server:  dialect.PG,
		Trigger: fault.Trigger{Table: "T", Flag: ast.FlagInsert},
		Effect:  fault.Effect{Kind: fault.EffectSuppressError},
	}}
	g := newGroup(t, faults, 2, true)
	if _, _, err := g.Exec("CREATE TABLE T (A INT PRIMARY KEY)"); err != nil {
		t.Fatal(err)
	}
	if _, _, err := g.Exec("INSERT INTO T VALUES (1)"); err != nil {
		t.Fatal(err)
	}
	if _, _, err := g.Exec("INSERT INTO T VALUES (1)"); err != nil {
		t.Fatal("duplicate accepted silently on the primary (fault), so no error must surface")
	}
	if g.Metrics().UncheckedOK == 0 {
		t.Error("unchecked results not counted")
	}
}

func TestPrimaryName(t *testing.T) {
	g := newGroup(t, nil, 2, true)
	if g.Primary() != "PG" {
		t.Errorf("primary: %s", g.Primary())
	}
}
