// Package replication implements the baseline the paper argues against:
// conventional data replication over identical servers under the
// fail-stop assumption. The primary executes every statement; updates
// are propagated to the backups; the only failures detected are clean
// crashes, on which a backup is promoted.
//
// Because results are never compared, non-fail-stop failures — wrong
// results, spurious errors, silent acceptance of invalid statements —
// pass straight through to the client and are *propagated to every
// replica*, exactly the shortcoming described in Section 2.1.
//
// Clients attach through sessions (NewSession): each client session maps
// to one session per group member, so a client's transaction survives a
// failover onto whichever member is promoted. The group serializes
// statements across sessions (primary/backup log shipping imposes a
// single global order — the scalability cost of the baseline, in
// contrast to the diverse middleware's parallel reads).
package replication

import (
	"errors"
	"strings"
	"sync"
	"time"

	"divsql/internal/core"
	"divsql/internal/engine"
	"divsql/internal/server"
	"divsql/internal/sql/types"
)

// ErrNoReplicas is returned when the group is built empty.
var ErrNoReplicas = errors.New("replication group needs at least one server")

// ErrGroupDown is returned when every replica has crashed.
var ErrGroupDown = errors.New("all replicas have crashed")

// Metrics counts replication events.
type Metrics struct {
	Statements  int64
	Failovers   int64
	Propagated  int64
	UncheckedOK int64 // results returned to clients without comparison
}

// Group is a primary/backup replication group of identical servers.
type Group struct {
	mu       sync.Mutex
	servers  []*server.Server
	primary  int
	metrics  Metrics
	restarts bool
	def      *Session
}

var (
	_ core.Executor         = (*Group)(nil)
	_ core.SessionExecutor  = (*Group)(nil)
	_ core.PreparedExecutor = (*Group)(nil)
	_ core.Session          = (*Session)(nil)
	_ core.PreparedExecutor = (*Session)(nil)
	_ core.Statement        = (*Stmt)(nil)
)

// NewGroup builds a replication group; servers[0] starts as primary.
// When autoRestart is set, crashed primaries are restarted and rejoin as
// backups after failover (warm standby).
func NewGroup(autoRestart bool, servers ...*server.Server) (*Group, error) {
	if len(servers) == 0 {
		return nil, ErrNoReplicas
	}
	return &Group{servers: servers, restarts: autoRestart}, nil
}

// Session is one client session of the group: one server session per
// member, so the client's transaction scope follows the primary across
// failovers.
type Session struct {
	g    *Group
	subs []*server.Session // index-aligned with g.servers
}

// NewSession opens a client session on every group member.
func (g *Group) NewSession() *Session {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.newSessionLocked()
}

func (g *Group) newSessionLocked() *Session {
	gs := &Session{g: g}
	for _, s := range g.servers {
		gs.subs = append(gs.subs, s.NewSession())
	}
	return gs
}

// OpenSession implements core.SessionExecutor.
func (g *Group) OpenSession() core.Session { return g.NewSession() }

// Close rolls back the session's open transaction on every member.
func (gs *Session) Close() error {
	var first error
	for _, sub := range gs.subs {
		if err := sub.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

func (g *Group) defaultSession() *Session {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.def == nil {
		g.def = g.newSessionLocked()
	}
	return g.def
}

// Primary returns the current primary's name.
func (g *Group) Primary() string {
	g.mu.Lock()
	defer g.mu.Unlock()
	return string(g.servers[g.primary].Name())
}

// Metrics returns a snapshot of the counters.
func (g *Group) Metrics() Metrics {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.metrics
}

// Exec executes the statement on the default session.
func (g *Group) Exec(sql string) (*engine.Result, time.Duration, error) {
	return g.defaultSession().Exec(sql)
}

// Prepare prepares a statement on the default session (implements
// core.PreparedExecutor).
func (g *Group) Prepare(sql string) (core.Statement, error) {
	return g.defaultSession().Prepare(sql)
}

// Stmt is a prepared statement of one group session: one prepared
// statement per member, executed on the primary and propagated to the
// backups. Implements core.Statement.
type Stmt struct {
	gs       *Session
	sql      string
	np       int
	subs     []*server.Stmt // index-aligned with g.servers
	prepErrs []error
}

// Prepare implements core.PreparedExecutor. It fails only when every
// member rejects the text (under the fail-stop assumption a member's
// prepare error is its legitimate outcome, surfaced if it is primary).
func (gs *Session) Prepare(sql string) (core.Statement, error) {
	ps := &Stmt{
		gs:       gs,
		sql:      sql,
		np:       -1,
		subs:     make([]*server.Stmt, len(gs.subs)),
		prepErrs: make([]error, len(gs.subs)),
	}
	var firstErr error
	for i, sub := range gs.subs {
		st, err := sub.PrepareStmt(sql)
		if err != nil {
			ps.prepErrs[i] = err
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		ps.subs[i] = st
		if ps.np < 0 {
			ps.np = st.NumParams()
		}
	}
	if ps.np < 0 {
		return nil, firstErr
	}
	return ps, nil
}

// SQL returns the statement text as prepared.
func (ps *Stmt) SQL() string { return ps.sql }

// NumParams reports how many arguments Exec expects.
func (ps *Stmt) NumParams() int { return ps.np }

// Close releases the per-member statements.
func (ps *Stmt) Close() error {
	for _, st := range ps.subs {
		if st != nil {
			_ = st.Close()
		}
	}
	return nil
}

// Exec executes the bound statement on the primary and propagates
// state-changing statements (with the same arguments) to the backups —
// the same unchecked pass-through as the text path.
func (ps *Stmt) Exec(args ...types.Value) (*engine.Result, time.Duration, error) {
	gs := ps.gs
	g := gs.g
	g.mu.Lock()
	defer g.mu.Unlock()
	g.metrics.Statements++

	for attempts := 0; attempts < len(g.servers)+1; attempts++ {
		var res *engine.Result
		var lat time.Duration
		var err error
		if perr := ps.prepErrs[g.primary]; perr != nil {
			err = perr
		} else {
			res, lat, err = ps.subs[g.primary].Exec(args...)
		}
		if errors.Is(err, server.ErrCrashed) {
			if !g.failover() {
				return nil, lat, ErrGroupDown
			}
			continue
		}
		if err != nil {
			return nil, lat, err
		}
		if isStateChanging(ps.sql) {
			for i := range g.servers {
				if i == g.primary || g.servers[i].Crashed() || ps.subs[i] == nil {
					continue
				}
				_, _, _ = ps.subs[i].Exec(args...)
				g.metrics.Propagated++
			}
		}
		g.metrics.UncheckedOK++
		return res, lat, nil
	}
	return nil, 0, ErrGroupDown
}

// Exec executes the statement on the primary and, for state-changing
// statements, propagates it to the backups. Only crash failures trigger
// recovery; results are returned unchecked.
func (gs *Session) Exec(sql string) (*engine.Result, time.Duration, error) {
	g := gs.g
	g.mu.Lock()
	defer g.mu.Unlock()
	g.metrics.Statements++

	for attempts := 0; attempts < len(g.servers)+1; attempts++ {
		prim := gs.subs[g.primary]
		res, lat, err := prim.Exec(sql)
		if errors.Is(err, server.ErrCrashed) {
			if !g.failover() {
				return nil, lat, ErrGroupDown
			}
			continue
		}
		if err != nil {
			// Under the fail-stop assumption a non-crash error is assumed
			// to be the statement's legitimate outcome; it is NOT treated
			// as a server failure.
			return nil, lat, err
		}
		if isStateChanging(sql) {
			g.propagate(gs, sql)
		}
		g.metrics.UncheckedOK++
		return res, lat, nil
	}
	return nil, 0, ErrGroupDown
}

// failover promotes the next live backup. It returns false when none is
// available.
//
// Warm-standby rejoin rides on the engine's committed-state snapshot:
// the restarted server receives the new primary's COMMITTED image (open
// client transactions are rewound on the copy-on-write clone, so a
// transaction that later rolls back never contaminates the standby).
// Unlike the diverse middleware, the baseline ships no redo on top: a
// client transaction open across the failover simply does not exist on
// the rejoined backup — propagated statements autocommit there — which
// is part of the fail-stop baseline's documented weakness.
func (g *Group) failover() bool {
	g.metrics.Failovers++
	crashed := g.servers[g.primary]
	if g.restarts {
		crashed.Restart()
		// Rejoin with state copied from a live peer below, once a new
		// primary is found.
	}
	for i := range g.servers {
		cand := (g.primary + 1 + i) % len(g.servers)
		if !g.servers[cand].Crashed() {
			if g.restarts && cand != g.primary {
				crashed.Restore(g.servers[cand].Snapshot())
			}
			g.primary = cand
			return true
		}
	}
	return false
}

// propagate replays an update on every backup, within the same client
// session (so transactional updates stay inside the client's transaction
// on every member). Failures of individual backups are ignored unless
// they crash (fail-stop assumption); wrong results cannot occur here
// because backups' outputs are never read — which is precisely how
// incorrect updates spread silently.
func (g *Group) propagate(gs *Session, sql string) {
	for i, s := range g.servers {
		if i == g.primary || s.Crashed() {
			continue
		}
		_, _, _ = gs.subs[i].Exec(sql)
		g.metrics.Propagated++
	}
}

func isStateChanging(sql string) bool {
	up := strings.ToUpper(strings.TrimSpace(sql))
	return !strings.HasPrefix(up, "SELECT")
}
