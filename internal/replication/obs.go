package replication

import (
	"fmt"

	"divsql/internal/obs"
)

// MetricsCollectors returns the group's collector set: the replication
// counters and primary identity, plus one per-member server collector
// (replica-labeled engine families).
func (g *Group) MetricsCollectors() []obs.Collector {
	group := obs.NewCollector("replication", func(f *obs.Feed) {
		g.mu.Lock()
		m := g.metrics
		primary := g.primary
		g.mu.Unlock()
		f.Count("divsql_replication_statements_total",
			"Statements executed through the group.", uint64(m.Statements))
		f.Count("divsql_replication_failovers_total",
			"Primary failovers after crashes.", uint64(m.Failovers))
		f.Count("divsql_replication_propagated_total",
			"Updates propagated to backups (uncompared).", uint64(m.Propagated))
		f.Count("divsql_replication_unchecked_ok_total",
			"Results returned to clients without comparison.", uint64(m.UncheckedOK))
		f.Gauge("divsql_replication_primary_index",
			"Index of the current primary in the group.", float64(primary))
	})
	cs := []obs.Collector{group}
	g.mu.Lock()
	for i, s := range g.servers {
		// Members are identical products; the index keeps the replica
		// labels distinct (PG#0, PG#1, ...).
		cs = append(cs, s.MetricsCollectorAs(fmt.Sprintf("%s#%d", s.Name(), i)))
	}
	g.mu.Unlock()
	return cs
}
