// Package tpcc implements the TPC-C-like workload the paper uses for
// statistical testing (Section 7: "We have run a few million queries
// with various loads including experiments based on the TPC-C
// benchmark"). The workload is restricted to the SQL subset common to
// all four simulated dialects — the portability constraint Section 2.1
// describes for diverse replication — so one statement stream can drive
// a single server, a non-diverse replication group, or the diverse
// middleware through the shared core.Executor interface.
package tpcc

import (
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"time"

	"divsql/internal/core"
	"divsql/internal/engine"
	"divsql/internal/sql/types"
)

// Config sizes the generated database.
type Config struct {
	Warehouses           int
	DistrictsPerWH       int
	CustomersPerDistrict int
	Items                int
	Seed                 int64
}

// DefaultConfig returns a laptop-scale configuration.
func DefaultConfig() Config {
	return Config{
		Warehouses:           2,
		DistrictsPerWH:       2,
		CustomersPerDistrict: 10,
		Items:                20,
		Seed:                 1,
	}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.Warehouses <= 0 || c.DistrictsPerWH <= 0 || c.CustomersPerDistrict <= 0 || c.Items <= 0 {
		return errors.New("tpcc: all sizes must be positive")
	}
	return nil
}

// Setup creates and populates the schema through the executor. All
// column types belong to the common dialect subset (dates are stored as
// ISO strings because the four dialects disagree on date type names).
// BandColumns maps each TPC-C table to its warehouse-id column — the
// partitioning key a shard router splits the workload on. Every
// transaction profile's predicates carry the warehouse id, so a sharded
// deployment routes each statement to one shard. ITEM is deliberately
// absent: it has no warehouse affinity and replicates to every shard.
func BandColumns() map[string]string {
	return map[string]string{
		"WAREHOUSE":  "W_ID",
		"DISTRICT":   "D_W_ID",
		"CUSTOMER":   "C_W_ID",
		"STOCK":      "S_W_ID",
		"ORDERS":     "O_W_ID",
		"ORDER_LINE": "OL_W_ID",
		"NEW_ORDER":  "NO_W_ID",
		"HISTORY":    "H_W_ID",
	}
}

func Setup(exec core.Executor, cfg Config) error {
	if err := cfg.Validate(); err != nil {
		return err
	}
	ddl := []string{
		`CREATE TABLE WAREHOUSE (W_ID INT PRIMARY KEY, W_NAME VARCHAR(10), W_YTD FLOAT)`,
		`CREATE TABLE DISTRICT (D_ID INT, D_W_ID INT, D_NAME VARCHAR(10), D_YTD FLOAT, D_NEXT_O_ID INT, PRIMARY KEY (D_W_ID, D_ID))`,
		`CREATE TABLE CUSTOMER (C_ID INT, C_D_ID INT, C_W_ID INT, C_NAME VARCHAR(16), C_BALANCE FLOAT, C_PAYMENT_CNT INT, PRIMARY KEY (C_W_ID, C_D_ID, C_ID))`,
		`CREATE TABLE ITEM (I_ID INT PRIMARY KEY, I_NAME VARCHAR(24), I_PRICE FLOAT)`,
		`CREATE TABLE STOCK (S_I_ID INT, S_W_ID INT, S_QUANTITY INT, S_YTD INT, PRIMARY KEY (S_W_ID, S_I_ID))`,
		`CREATE TABLE ORDERS (O_ID INT, O_D_ID INT, O_W_ID INT, O_C_ID INT, O_OL_CNT INT, O_ENTRY_D VARCHAR(10), PRIMARY KEY (O_W_ID, O_D_ID, O_ID))`,
		`CREATE TABLE ORDER_LINE (OL_O_ID INT, OL_D_ID INT, OL_W_ID INT, OL_NUMBER INT, OL_I_ID INT, OL_QUANTITY INT, OL_AMOUNT FLOAT, PRIMARY KEY (OL_W_ID, OL_D_ID, OL_O_ID, OL_NUMBER))`,
		`CREATE TABLE NEW_ORDER (NO_O_ID INT, NO_D_ID INT, NO_W_ID INT, PRIMARY KEY (NO_W_ID, NO_D_ID, NO_O_ID))`,
		`CREATE TABLE HISTORY (H_ID INT PRIMARY KEY, H_C_ID INT, H_W_ID INT, H_AMOUNT FLOAT, H_DATE VARCHAR(10))`,
	}
	for _, stmt := range ddl {
		if _, _, err := exec.Exec(stmt); err != nil {
			return fmt.Errorf("tpcc setup: %w", err)
		}
	}
	for w := 1; w <= cfg.Warehouses; w++ {
		if err := execf(exec, "INSERT INTO WAREHOUSE VALUES (%d, 'WH%d', 0)", w, w); err != nil {
			return err
		}
		for d := 1; d <= cfg.DistrictsPerWH; d++ {
			if err := execf(exec, "INSERT INTO DISTRICT VALUES (%d, %d, 'D%d_%d', 0, 1)", d, w, w, d); err != nil {
				return err
			}
			for c := 1; c <= cfg.CustomersPerDistrict; c++ {
				if err := execf(exec, "INSERT INTO CUSTOMER VALUES (%d, %d, %d, 'cust_%d_%d_%d', 0, 0)",
					c, d, w, w, d, c); err != nil {
					return err
				}
			}
		}
		for i := 1; i <= cfg.Items; i++ {
			if err := execf(exec, "INSERT INTO STOCK VALUES (%d, %d, 100, 0)", i, w); err != nil {
				return err
			}
		}
	}
	for i := 1; i <= cfg.Items; i++ {
		// Prices are multiples of 0.25 so arithmetic stays exact in every
		// replica's float representation.
		price := float64((i%40)+1) * 0.25
		if err := execf(exec, "INSERT INTO ITEM VALUES (%d, 'item_%d', %g)", i, i, price); err != nil {
			return err
		}
	}
	return nil
}

func execf(exec core.Executor, format string, args ...any) error {
	sql := fmt.Sprintf(format, args...)
	if _, _, err := exec.Exec(sql); err != nil {
		return fmt.Errorf("tpcc: %s: %w", sql, err)
	}
	return nil
}

// TxType enumerates the transaction mix.
type TxType int

// Transaction types (approximate TPC-C mix).
const (
	TxNewOrder TxType = iota + 1
	TxPayment
	TxOrderStatus
	TxDelivery
	TxStockLevel
)

// String names the transaction type.
func (t TxType) String() string {
	switch t {
	case TxNewOrder:
		return "NewOrder"
	case TxPayment:
		return "Payment"
	case TxOrderStatus:
		return "OrderStatus"
	case TxDelivery:
		return "Delivery"
	case TxStockLevel:
		return "StockLevel"
	default:
		return "Unknown"
	}
}

// Metrics summarizes a workload run.
type Metrics struct {
	Transactions int
	Statements   int
	PerType      map[TxType]int
	Errors       int
	Divergences  int // detected replica divergences (diverse mode only)
	SimLatency   time.Duration
}

// merge folds another run's counters into m.
func (m *Metrics) merge(o Metrics) {
	m.Transactions += o.Transactions
	m.Statements += o.Statements
	m.Errors += o.Errors
	m.Divergences += o.Divergences
	m.SimLatency += o.SimLatency
	for tt, n := range o.PerType {
		m.PerType[tt] += n
	}
}

// Mix weights the transaction types (the weights need not sum to 100).
// The zero Mix is replaced by DefaultMix.
type Mix struct {
	NewOrder, Payment, OrderStatus, Delivery, StockLevel int
}

// DefaultMix approximates the standard TPC-C transaction mix.
func DefaultMix() Mix {
	return Mix{NewOrder: 45, Payment: 43, OrderStatus: 4, Delivery: 4, StockLevel: 4}
}

// ReadHeavyMix skews the mix toward the read-only transactions
// (OrderStatus, StockLevel). Read-only statements from concurrent
// terminals execute in parallel, so this is the mix where session-level
// parallelism pays off most.
func ReadHeavyMix() Mix {
	return Mix{NewOrder: 5, Payment: 5, OrderStatus: 45, Delivery: 5, StockLevel: 40}
}

func (mx Mix) total() int {
	return mx.NewOrder + mx.Payment + mx.OrderStatus + mx.Delivery + mx.StockLevel
}

// Driver issues the transaction mix against an executor.
type Driver struct {
	cfg      Config
	rng      *rand.Rand
	histSeq  int
	mix      Mix
	terminal int // 0: unpinned; >0: one-based terminal id

	// prepared selects the prepared-statement execution mode: every
	// transaction statement is a fixed template with ? placeholders,
	// prepared once per terminal session and re-executed with typed
	// arguments — the parse leaves the hot loop. Inline mode renders the
	// same templates to literal SQL (byte-identical to the historical
	// statements).
	prepared bool
	pe       core.PreparedExecutor
	cache    map[string]core.Statement
}

// SetPrepared switches the driver's execution mode (effective once the
// driver attaches to an executor supporting core.PreparedExecutor).
func (d *Driver) SetPrepared(on bool) { d.prepared = on }

// attach binds the driver to its executor's prepared path when enabled.
func (d *Driver) attach(exec core.Executor) {
	d.pe, d.cache = nil, nil
	if !d.prepared {
		return
	}
	if pe, ok := exec.(core.PreparedExecutor); ok {
		d.pe = pe
		d.cache = make(map[string]core.Statement)
	}
}

// NewDriver builds a deterministic driver for the configuration.
func NewDriver(cfg Config) *Driver {
	return &Driver{cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed)), mix: DefaultMix()}
}

// NewTerminalDriver builds the driver of one terminal of a concurrent
// run. Terminals are one-based; each is pinned to its own warehouse and
// draws HISTORY ids from a disjoint range, so terminals whose warehouses
// differ touch disjoint rows — the isolation contract of the engine's
// concurrent sessions. Terminals beyond the warehouse count wrap around
// and share a warehouse: their transactions then contend on the same
// rows (e.g. two NewOrders drawing one D_NEXT_O_ID), which surfaces as
// counted per-transaction errors, not corruption.
func NewTerminalDriver(cfg Config, mix Mix, terminal int) *Driver {
	if mix.total() <= 0 {
		mix = DefaultMix()
	}
	return &Driver{
		cfg:      cfg,
		rng:      rand.New(rand.NewSource(cfg.Seed + int64(terminal)*7919)),
		histSeq:  (terminal - 1) * 10_000_000,
		mix:      mix,
		terminal: terminal,
	}
}

// Run executes n transactions, returning the aggregate metrics. Errors
// of individual transactions are counted, not fatal (the load keeps
// going, as in the paper's campaigns).
func (d *Driver) Run(exec core.Executor, n int) (Metrics, error) {
	return d.run(exec, n, false)
}

// run executes n transactions. When simulateLatency is set the driver
// sleeps each transaction's accumulated simulated latency, modelling the
// client-observed round-trip of the paper's campaigns; concurrent
// terminals overlap those waits.
func (d *Driver) run(exec core.Executor, n int, simulateLatency bool) (Metrics, error) {
	d.attach(exec)
	m := Metrics{PerType: make(map[TxType]int)}
	for i := 0; i < n; i++ {
		tt := d.pickType()
		m.PerType[tt]++
		m.Transactions++
		stmts, lat, err := d.runTx(exec, tt)
		m.Statements += stmts
		m.SimLatency += lat
		if err != nil {
			m.Errors++
			var div *divergenceMarker
			if errors.As(err, &div) {
				m.Divergences++
			}
		}
		if simulateLatency && lat > 0 {
			time.Sleep(lat)
		}
	}
	return m, nil
}

// isolationStmt is the isolation level every concurrent terminal
// declares at session start. READ COMMITTED is in the acceptance set of
// all four simulated dialects, so the same stream drives a single
// server, a homogeneous group, or the diverse middleware.
const isolationStmt = "SET TRANSACTION ISOLATION LEVEL READ COMMITTED"

// ConcurrentOptions configures a multi-terminal run.
type ConcurrentOptions struct {
	// Terminals is the number of concurrent client terminals; each runs
	// in its own session when the executor supports sessions.
	Terminals int
	// TxPerTerminal is the number of transactions each terminal issues.
	TxPerTerminal int
	// Mix weights the transaction types (zero value: DefaultMix).
	Mix Mix
	// SimulateLatency makes each terminal experience the simulated
	// statement latencies as real time, so the benchmark's throughput
	// reflects how concurrent sessions overlap server waits.
	SimulateLatency bool
	// Prepared runs every terminal on prepared statements: each of the
	// mix's fixed statement templates is parsed once per terminal
	// session and re-executed with typed arguments, so the per-statement
	// parse cost leaves the hot loop.
	Prepared bool
}

// RunConcurrent drives the mix from opts.Terminals concurrent terminals.
// When the executor supports sessions (core.SessionExecutor), each
// terminal runs in its own session — its own transaction scope — which
// is what makes concurrent transactional terminals sound; otherwise all
// terminals share the executor. Terminals are pinned to warehouses
// (wrapping when there are more terminals than warehouses), keeping
// writers disjoint.
func RunConcurrent(exec core.Executor, cfg Config, opts ConcurrentOptions) (Metrics, error) {
	if err := cfg.Validate(); err != nil {
		return Metrics{}, err
	}
	if opts.Terminals <= 0 {
		opts.Terminals = 1
	}
	merged := Metrics{PerType: make(map[TxType]int)}
	var (
		mu       sync.Mutex
		wg       sync.WaitGroup
		firstErr error
	)
	for term := 1; term <= opts.Terminals; term++ {
		wg.Add(1)
		go func(term int) {
			defer wg.Done()
			texec := exec
			if se, ok := exec.(core.SessionExecutor); ok {
				sess := se.OpenSession()
				defer func() { _ = sess.Close() }()
				texec = sess
				// Terminals declare their isolation level up front: READ
				// COMMITTED is the level TPC-C's disjoint-writer contract
				// needs, and declaring it (rather than relying on the
				// default) keeps the workload honest about what it assumes.
				// Level support is part of the common dialect subset, so a
				// failure here is fatal rather than a counted tx error.
				if _, _, err := texec.Exec(isolationStmt); err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = fmt.Errorf("tpcc terminal %d: %w", term, err)
					}
					mu.Unlock()
					return
				}
			}
			d := NewTerminalDriver(cfg, opts.Mix, term)
			d.SetPrepared(opts.Prepared)
			m, err := d.run(texec, opts.TxPerTerminal, opts.SimulateLatency)
			mu.Lock()
			defer mu.Unlock()
			merged.merge(m)
			if err != nil && firstErr == nil {
				firstErr = err
			}
		}(term)
	}
	wg.Wait()
	return merged, firstErr
}

// divergenceMarker adapts middleware divergence errors without importing
// the middleware package (matched by substring).
type divergenceMarker struct{ err error }

func (d *divergenceMarker) Error() string { return d.err.Error() }

func (d *Driver) pickType() TxType {
	r := d.rng.Intn(d.mix.total())
	switch {
	case r < d.mix.NewOrder:
		return TxNewOrder
	case r < d.mix.NewOrder+d.mix.Payment:
		return TxPayment
	case r < d.mix.NewOrder+d.mix.Payment+d.mix.OrderStatus:
		return TxOrderStatus
	case r < d.mix.NewOrder+d.mix.Payment+d.mix.OrderStatus+d.mix.Delivery:
		return TxDelivery
	default:
		return TxStockLevel
	}
}

func (d *Driver) wh() int {
	if d.terminal > 0 {
		return 1 + (d.terminal-1)%d.cfg.Warehouses
	}
	return 1 + d.rng.Intn(d.cfg.Warehouses)
}
func (d *Driver) district() int { return 1 + d.rng.Intn(d.cfg.DistrictsPerWH) }
func (d *Driver) customer() int { return 1 + d.rng.Intn(d.cfg.CustomersPerDistrict) }
func (d *Driver) item() int     { return 1 + d.rng.Intn(d.cfg.Items) }

// runTx executes one transaction; it returns the number of statements
// submitted and the accumulated simulated latency.
func (d *Driver) runTx(exec core.Executor, tt TxType) (int, time.Duration, error) {
	switch tt {
	case TxNewOrder:
		return d.newOrder(exec)
	case TxPayment:
		return d.payment(exec)
	case TxOrderStatus:
		return d.orderStatus(exec)
	case TxDelivery:
		return d.delivery(exec)
	default:
		return d.stockLevel(exec)
	}
}

// txRun executes one transaction's statements, accumulating counters.
// Each statement is a fixed template with ? placeholders: in prepared
// mode the template is prepared once per terminal session (driver plan
// cache) and executed with typed arguments; in inline mode the template
// is rendered to literal SQL, byte-identical to the historical
// statements.
type txRun struct {
	d     *Driver
	exec  core.Executor
	stmts int
	lat   time.Duration
}

func (d *Driver) newTx(exec core.Executor) *txRun { return &txRun{d: d, exec: exec} }

// Typed argument constructors.
func vi(i int) types.Value     { return types.NewInt(int64(i)) }
func vl(i int64) types.Value   { return types.NewInt(i) }
func vf(f float64) types.Value { return types.NewFloat(f) }

func (t *txRun) do(q string, args ...types.Value) (*engine.Result, error) {
	t.stmts++
	if t.d.pe != nil {
		st, ok := t.d.cache[q]
		if !ok {
			var err error
			st, err = t.d.pe.Prepare(q)
			if err != nil {
				return nil, err
			}
			t.d.cache[q] = st
		}
		res, lat, err := st.Exec(args...)
		t.lat += lat
		return res, err
	}
	res, lat, err := t.exec.Exec(inlineSQL(q, args))
	t.lat += lat
	return res, err
}

// inlineSQL renders a template to literal SQL by substituting each ?
// with the corresponding argument's SQL literal (the templates carry no
// '?' inside string literals).
func inlineSQL(q string, args []types.Value) string {
	if len(args) == 0 {
		return q
	}
	var b strings.Builder
	b.Grow(len(q) + 8*len(args))
	ai := 0
	for i := 0; i < len(q); i++ {
		if q[i] == '?' && ai < len(args) {
			b.WriteString(args[ai].SQLLiteral())
			ai++
			continue
		}
		b.WriteByte(q[i])
	}
	return b.String()
}

// abort rolls back after a failure inside an open transaction.
func (t *txRun) abort() {
	_, _, _ = t.exec.Exec("ROLLBACK")
	t.stmts++
}

func (d *Driver) newOrder(exec core.Executor) (int, time.Duration, error) {
	t := d.newTx(exec)
	w, dist, cust := d.wh(), d.district(), d.customer()
	lines := 2 + d.rng.Intn(3)
	items := make([]int, lines)
	qtys := make([]int, lines)
	for i := range items {
		items[i] = d.item()
		qtys[i] = 1 + d.rng.Intn(5)
	}

	if _, err := t.do("BEGIN TRANSACTION"); err != nil {
		return t.stmts, t.lat, err
	}
	res, err := t.do("SELECT D_NEXT_O_ID FROM DISTRICT WHERE D_W_ID = ? AND D_ID = ?", vi(w), vi(dist))
	if err != nil || len(res.Rows) != 1 {
		t.abort()
		if err == nil {
			err = errors.New("tpcc: district not found")
		}
		return t.stmts, t.lat, err
	}
	oid := res.Rows[0][0].AsInt()
	type step struct {
		q    string
		args []types.Value
	}
	steps := []step{
		{"UPDATE DISTRICT SET D_NEXT_O_ID = ? WHERE D_W_ID = ? AND D_ID = ?",
			[]types.Value{vl(oid + 1), vi(w), vi(dist)}},
		{"INSERT INTO ORDERS VALUES (?, ?, ?, ?, ?, '2026-06-10')",
			[]types.Value{vl(oid), vi(dist), vi(w), vi(cust), vi(lines)}},
		{"INSERT INTO NEW_ORDER VALUES (?, ?, ?)",
			[]types.Value{vl(oid), vi(dist), vi(w)}},
	}
	for _, s := range steps {
		if _, err := t.do(s.q, s.args...); err != nil {
			t.abort()
			return t.stmts, t.lat, err
		}
	}
	for i := 0; i < lines; i++ {
		res, err := t.do("SELECT I_PRICE FROM ITEM WHERE I_ID = ?", vi(items[i]))
		if err != nil || len(res.Rows) != 1 {
			t.abort()
			if err == nil {
				err = errors.New("tpcc: item not found")
			}
			return t.stmts, t.lat, err
		}
		price := res.Rows[0][0].AsFloat()
		amount := price * float64(qtys[i])
		if _, err := t.do("UPDATE STOCK SET S_QUANTITY = S_QUANTITY - ?, S_YTD = S_YTD + ? WHERE S_W_ID = ? AND S_I_ID = ?",
			vi(qtys[i]), vi(qtys[i]), vi(w), vi(items[i])); err != nil {
			t.abort()
			return t.stmts, t.lat, err
		}
		if _, err := t.do("INSERT INTO ORDER_LINE VALUES (?, ?, ?, ?, ?, ?, ?)",
			vl(oid), vi(dist), vi(w), vi(i+1), vi(items[i]), vi(qtys[i]), vf(amount)); err != nil {
			t.abort()
			return t.stmts, t.lat, err
		}
	}
	_, err = t.do("COMMIT")
	return t.stmts, t.lat, err
}

func (d *Driver) payment(exec core.Executor) (int, time.Duration, error) {
	t := d.newTx(exec)
	w, dist, cust := d.wh(), d.district(), d.customer()
	amount := float64(1+d.rng.Intn(200)) * 0.25
	d.histSeq++
	if _, err := t.do("BEGIN TRANSACTION"); err != nil {
		return t.stmts, t.lat, err
	}
	type step struct {
		q    string
		args []types.Value
	}
	steps := []step{
		{"UPDATE WAREHOUSE SET W_YTD = W_YTD + ? WHERE W_ID = ?",
			[]types.Value{vf(amount), vi(w)}},
		{"UPDATE DISTRICT SET D_YTD = D_YTD + ? WHERE D_W_ID = ? AND D_ID = ?",
			[]types.Value{vf(amount), vi(w), vi(dist)}},
		{"UPDATE CUSTOMER SET C_BALANCE = C_BALANCE - ?, C_PAYMENT_CNT = C_PAYMENT_CNT + 1 WHERE C_W_ID = ? AND C_D_ID = ? AND C_ID = ?",
			[]types.Value{vf(amount), vi(w), vi(dist), vi(cust)}},
		{"INSERT INTO HISTORY VALUES (?, ?, ?, ?, '2026-06-10')",
			[]types.Value{vi(d.histSeq), vi(cust), vi(w), vf(amount)}},
	}
	for _, s := range steps {
		if _, err := t.do(s.q, s.args...); err != nil {
			t.abort()
			return t.stmts, t.lat, err
		}
	}
	_, err := t.do("COMMIT")
	return t.stmts, t.lat, err
}

func (d *Driver) orderStatus(exec core.Executor) (int, time.Duration, error) {
	t := d.newTx(exec)
	w, dist, cust := d.wh(), d.district(), d.customer()
	if _, err := t.do("SELECT C_NAME, C_BALANCE FROM CUSTOMER WHERE C_W_ID = ? AND C_D_ID = ? AND C_ID = ?",
		vi(w), vi(dist), vi(cust)); err != nil {
		return t.stmts, t.lat, err
	}
	// Most recent order of the customer (MAX instead of LIMIT: row
	// limiting is not in the common dialect subset).
	res, err := t.do("SELECT MAX(O_ID) AS LAST_O FROM ORDERS WHERE O_W_ID = ? AND O_D_ID = ? AND O_C_ID = ?",
		vi(w), vi(dist), vi(cust))
	if err != nil {
		return t.stmts, t.lat, err
	}
	if len(res.Rows) == 1 && !res.Rows[0][0].IsNull() {
		oid := res.Rows[0][0].AsInt()
		if _, err := t.do("SELECT OL_I_ID, OL_QUANTITY, OL_AMOUNT FROM ORDER_LINE WHERE OL_W_ID = ? AND OL_D_ID = ? AND OL_O_ID = ? ORDER BY OL_NUMBER",
			vi(w), vi(dist), vl(oid)); err != nil {
			return t.stmts, t.lat, err
		}
	}
	return t.stmts, t.lat, nil
}

func (d *Driver) delivery(exec core.Executor) (int, time.Duration, error) {
	t := d.newTx(exec)
	w, dist := d.wh(), d.district()
	if _, err := t.do("BEGIN TRANSACTION"); err != nil {
		return t.stmts, t.lat, err
	}
	res, err := t.do("SELECT MIN(NO_O_ID) AS OLDEST FROM NEW_ORDER WHERE NO_W_ID = ? AND NO_D_ID = ?", vi(w), vi(dist))
	if err != nil {
		t.abort()
		return t.stmts, t.lat, err
	}
	if len(res.Rows) != 1 || res.Rows[0][0].IsNull() {
		_, err = t.do("COMMIT") // nothing to deliver
		return t.stmts, t.lat, err
	}
	oid := res.Rows[0][0].AsInt()
	if _, err := t.do("DELETE FROM NEW_ORDER WHERE NO_W_ID = ? AND NO_D_ID = ? AND NO_O_ID = ?", vi(w), vi(dist), vl(oid)); err != nil {
		t.abort()
		return t.stmts, t.lat, err
	}
	res, err = t.do("SELECT O_C_ID FROM ORDERS WHERE O_W_ID = ? AND O_D_ID = ? AND O_ID = ?", vi(w), vi(dist), vl(oid))
	if err != nil || len(res.Rows) != 1 {
		t.abort()
		if err == nil {
			err = errors.New("tpcc: delivered order missing")
		}
		return t.stmts, t.lat, err
	}
	cust := res.Rows[0][0].AsInt()
	if _, err := t.do("UPDATE CUSTOMER SET C_BALANCE = C_BALANCE + (SELECT SUM(OL_AMOUNT) FROM ORDER_LINE WHERE OL_W_ID = ? AND OL_D_ID = ? AND OL_O_ID = ?) WHERE C_W_ID = ? AND C_D_ID = ? AND C_ID = ?",
		vi(w), vi(dist), vl(oid), vi(w), vi(dist), vl(cust)); err != nil {
		t.abort()
		return t.stmts, t.lat, err
	}
	_, err = t.do("COMMIT")
	return t.stmts, t.lat, err
}

func (d *Driver) stockLevel(exec core.Executor) (int, time.Duration, error) {
	t := d.newTx(exec)
	w := d.wh()
	_, err := t.do("SELECT COUNT(*) AS LOW_STOCK FROM STOCK WHERE S_W_ID = ? AND S_QUANTITY < 50", vi(w))
	return t.stmts, t.lat, err
}

// CheckConsistency verifies the workload's invariants, detecting silent
// state corruption:
//
//   - every district's D_NEXT_O_ID equals 1 + its greatest order id;
//   - every warehouse's W_YTD equals the sum of its districts' D_YTD;
//   - every order has exactly O_OL_CNT order lines.
func CheckConsistency(exec core.Executor) error {
	res, _, err := exec.Exec("SELECT D_W_ID, D_ID, D_NEXT_O_ID FROM DISTRICT ORDER BY D_W_ID, D_ID")
	if err != nil {
		return fmt.Errorf("consistency: %w", err)
	}
	for _, row := range res.Rows {
		w, dID, next := row[0].AsInt(), row[1].AsInt(), row[2].AsInt()
		mres, _, err := exec.Exec(fmt.Sprintf(
			"SELECT MAX(O_ID) AS M FROM ORDERS WHERE O_W_ID = %d AND O_D_ID = %d", w, dID))
		if err != nil {
			return err
		}
		maxO := int64(0)
		if len(mres.Rows) == 1 && !mres.Rows[0][0].IsNull() {
			maxO = mres.Rows[0][0].AsInt()
		}
		if next != maxO+1 {
			return fmt.Errorf("consistency: district (%d,%d) next=%d max(O_ID)=%d", w, dID, next, maxO)
		}
	}
	res, _, err = exec.Exec("SELECT W_ID, W_YTD FROM WAREHOUSE ORDER BY W_ID")
	if err != nil {
		return err
	}
	for _, row := range res.Rows {
		w, ytd := row[0].AsInt(), row[1].AsFloat()
		sres, _, err := exec.Exec(fmt.Sprintf("SELECT SUM(D_YTD) AS S FROM DISTRICT WHERE D_W_ID = %d", w))
		if err != nil {
			return err
		}
		sum := 0.0
		if len(sres.Rows) == 1 && !sres.Rows[0][0].IsNull() {
			sum = sres.Rows[0][0].AsFloat()
		}
		if diff := ytd - sum; diff > 0.001 || diff < -0.001 {
			return fmt.Errorf("consistency: warehouse %d W_YTD=%g sum(D_YTD)=%g", w, ytd, sum)
		}
	}
	res, _, err = exec.Exec("SELECT O_W_ID, O_D_ID, O_ID, O_OL_CNT FROM ORDERS ORDER BY O_W_ID, O_D_ID, O_ID")
	if err != nil {
		return err
	}
	for _, row := range res.Rows {
		w, dID, oid, cnt := row[0].AsInt(), row[1].AsInt(), row[2].AsInt(), row[3].AsInt()
		cres, _, err := exec.Exec(fmt.Sprintf(
			"SELECT COUNT(*) AS N FROM ORDER_LINE WHERE OL_W_ID = %d AND OL_D_ID = %d AND OL_O_ID = %d", w, dID, oid))
		if err != nil {
			return err
		}
		if got := cres.Rows[0][0].AsInt(); got != cnt {
			return fmt.Errorf("consistency: order (%d,%d,%d) has %d lines, wants %d", w, dID, oid, got, cnt)
		}
	}
	return nil
}
