package tpcc

import (
	"testing"

	"divsql/internal/dialect"
	"divsql/internal/middleware"
	"divsql/internal/replication"
	"divsql/internal/server"
)

func singleServer(t *testing.T, name dialect.ServerName) *server.Server {
	t.Helper()
	s, err := server.New(name, nil)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestConfigValidation(t *testing.T) {
	if err := (Config{}).Validate(); err == nil {
		t.Error("zero config must be invalid")
	}
	if err := DefaultConfig().Validate(); err != nil {
		t.Errorf("default config: %v", err)
	}
}

func TestSetupAndRunSingle(t *testing.T) {
	srv := singleServer(t, dialect.OR)
	cfg := DefaultConfig()
	if err := Setup(srv, cfg); err != nil {
		t.Fatal(err)
	}
	drv := NewDriver(cfg)
	m, err := drv.Run(srv, 200)
	if err != nil {
		t.Fatal(err)
	}
	if m.Transactions != 200 || m.Statements == 0 {
		t.Errorf("metrics: %+v", m)
	}
	if m.Errors != 0 {
		t.Errorf("fault-free single server must not error: %+v", m)
	}
	if err := CheckConsistency(srv); err != nil {
		t.Errorf("consistency: %v", err)
	}
	// The mix must include every transaction type at this volume.
	for _, tt := range []TxType{TxNewOrder, TxPayment, TxOrderStatus, TxDelivery, TxStockLevel} {
		if m.PerType[tt] == 0 {
			t.Errorf("no %s transactions in the mix", tt)
		}
	}
}

func TestWorkloadPortableAcrossDialects(t *testing.T) {
	// The workload must run unmodified on every simulated server: it is
	// restricted to the common dialect subset.
	for _, name := range dialect.AllServers {
		srv := singleServer(t, name)
		cfg := DefaultConfig()
		if err := Setup(srv, cfg); err != nil {
			t.Fatalf("%s: setup: %v", name, err)
		}
		drv := NewDriver(cfg)
		m, err := drv.Run(srv, 60)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		// MS-sim carries the unaliased-aggregate quirk (bug 222476's
		// region) which the Delivery transaction's scalar SUM hits; the
		// other servers must be error-free.
		if name != dialect.MS && m.Errors != 0 {
			t.Errorf("%s: %d errors", name, m.Errors)
		}
	}
}

func TestDeterministicDriver(t *testing.T) {
	run := func() Metrics {
		srv := singleServer(t, dialect.OR)
		cfg := DefaultConfig()
		if err := Setup(srv, cfg); err != nil {
			t.Fatal(err)
		}
		m, err := NewDriver(cfg).Run(srv, 100)
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	a, b := run(), run()
	if a.Statements != b.Statements || a.Transactions != b.Transactions {
		t.Errorf("driver not deterministic: %+v vs %+v", a, b)
	}
	for tt, n := range a.PerType {
		if b.PerType[tt] != n {
			t.Errorf("mix differs for %s: %d vs %d", tt, n, b.PerType[tt])
		}
	}
}

func TestRunOnDiverseMiddleware(t *testing.T) {
	servers := []*server.Server{
		singleServer(t, dialect.PG),
		singleServer(t, dialect.OR),
		singleServer(t, dialect.MS),
	}
	d, err := middleware.New(middleware.DefaultConfig(), servers...)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	if err := Setup(d, cfg); err != nil {
		t.Fatal(err)
	}
	m, err := NewDriver(cfg).Run(d, 150)
	if err != nil {
		t.Fatal(err)
	}
	if m.Errors != 0 {
		t.Errorf("diverse middleware surfaced %d errors to the client", m.Errors)
	}
	if err := CheckConsistency(d); err != nil {
		t.Errorf("consistency through middleware: %v", err)
	}
}

func TestRunOnReplicationGroup(t *testing.T) {
	g, err := replication.NewGroup(true,
		singleServer(t, dialect.PG), singleServer(t, dialect.PG))
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	if err := Setup(g, cfg); err != nil {
		t.Fatal(err)
	}
	m, err := NewDriver(cfg).Run(g, 100)
	if err != nil {
		t.Fatal(err)
	}
	if m.Errors != 0 {
		t.Errorf("replicated group errors: %+v", m)
	}
	if err := CheckConsistency(g); err != nil {
		t.Errorf("consistency: %v", err)
	}
}

func TestConsistencyDetectsCorruption(t *testing.T) {
	srv := singleServer(t, dialect.OR)
	cfg := DefaultConfig()
	if err := Setup(srv, cfg); err != nil {
		t.Fatal(err)
	}
	if _, err := NewDriver(cfg).Run(srv, 50); err != nil {
		t.Fatal(err)
	}
	// Corrupt an invariant directly.
	if _, _, err := srv.Exec("UPDATE WAREHOUSE SET W_YTD = W_YTD + 1 WHERE W_ID = 1"); err != nil {
		t.Fatal(err)
	}
	if err := CheckConsistency(srv); err == nil {
		t.Error("corruption not detected")
	}
}
