package tpcc

import (
	"testing"

	"divsql/internal/dialect"
	"divsql/internal/middleware"
	"divsql/internal/server"
)

func concurrentConfig() Config {
	return Config{
		Warehouses:           4,
		DistrictsPerWH:       2,
		CustomersPerDistrict: 10,
		Items:                20,
		Seed:                 1,
	}
}

// TestRunConcurrentSingleServer drives four warehouse-pinned terminals,
// each in its own session, against one simulated server and verifies the
// workload invariants afterwards. Run with -race.
func TestRunConcurrentSingleServer(t *testing.T) {
	srv, err := server.New(dialect.PG, nil)
	if err != nil {
		t.Fatal(err)
	}
	cfg := concurrentConfig()
	if err := Setup(srv, cfg); err != nil {
		t.Fatal(err)
	}
	m, err := RunConcurrent(srv, cfg, ConcurrentOptions{Terminals: 4, TxPerTerminal: 25})
	if err != nil {
		t.Fatal(err)
	}
	if m.Transactions != 100 {
		t.Errorf("transactions: %d", m.Transactions)
	}
	if m.Errors != 0 {
		t.Errorf("errors under disjoint terminals: %d", m.Errors)
	}
	if err := CheckConsistency(srv); err != nil {
		t.Errorf("invariants violated after concurrent run: %v", err)
	}
}

// TestRunConcurrentDiverse drives concurrent terminals against the
// three-version diverse middleware (fault-free replicas): results must
// stay unanimous — concurrent sessions must not manufacture divergence.
func TestRunConcurrentDiverse(t *testing.T) {
	var servers []*server.Server
	for _, n := range []dialect.ServerName{dialect.PG, dialect.OR, dialect.MS} {
		s, err := server.New(n, nil)
		if err != nil {
			t.Fatal(err)
		}
		servers = append(servers, s)
	}
	d, err := middleware.New(middleware.DefaultConfig(), servers...)
	if err != nil {
		t.Fatal(err)
	}
	cfg := concurrentConfig()
	if err := Setup(d, cfg); err != nil {
		t.Fatal(err)
	}
	m, err := RunConcurrent(d, cfg, ConcurrentOptions{Terminals: 4, TxPerTerminal: 15, Mix: ReadHeavyMix()})
	if err != nil {
		t.Fatal(err)
	}
	if m.Divergences != 0 || m.Errors != 0 {
		t.Errorf("divergences=%d errors=%d on fault-free replicas", m.Divergences, m.Errors)
	}
	if err := CheckConsistency(d); err != nil {
		t.Errorf("invariants violated: %v", err)
	}
	if q := d.QuarantinedReplicas(); len(q) != 0 {
		t.Errorf("replicas spuriously quarantined: %v", q)
	}
}
