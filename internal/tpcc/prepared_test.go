package tpcc

import (
	"testing"

	"divsql/internal/dialect"
	"divsql/internal/server"
	"divsql/internal/sql/types"
)

func TestInlineSQLRendering(t *testing.T) {
	got := inlineSQL("INSERT INTO T VALUES (?, ?, ?)",
		[]types.Value{types.NewInt(1), types.NewFloat(2.5), types.NewString("x")})
	want := "INSERT INTO T VALUES (1, 2.5, 'x')"
	if got != want {
		t.Errorf("inlineSQL = %q, want %q", got, want)
	}
	if inlineSQL("COMMIT", nil) != "COMMIT" {
		t.Error("no-arg template must pass through")
	}
}

// Prepared terminals must produce exactly the same database state as
// inline terminals: same seed, same mix, same invariants.
func TestPreparedTerminalsConsistent(t *testing.T) {
	cfg := Config{Warehouses: 4, DistrictsPerWH: 2, CustomersPerDistrict: 5, Items: 10, Seed: 1}
	run := func(prepared bool) *server.Server {
		srv, err := server.New(dialect.PG, nil)
		if err != nil {
			t.Fatal(err)
		}
		if err := Setup(srv, cfg); err != nil {
			t.Fatal(err)
		}
		m, err := RunConcurrent(srv, cfg, ConcurrentOptions{
			Terminals: 4, TxPerTerminal: 40, Prepared: prepared,
		})
		if err != nil {
			t.Fatal(err)
		}
		if m.Errors > 0 {
			t.Fatalf("prepared=%v: %d errors", prepared, m.Errors)
		}
		if err := CheckConsistency(srv); err != nil {
			t.Fatalf("prepared=%v: %v", prepared, err)
		}
		return srv
	}
	inline := run(false)
	prepared := run(true)
	// Same transaction stream → same aggregate state on both servers.
	for _, q := range []string{
		"SELECT COUNT(*) AS N FROM ORDERS",
		"SELECT COUNT(*) AS N FROM ORDER_LINE",
		"SELECT SUM(D_NEXT_O_ID) AS S FROM DISTRICT",
		"SELECT SUM(C_PAYMENT_CNT) AS S FROM CUSTOMER",
	} {
		ri, _, err := inline.Exec(q)
		if err != nil {
			t.Fatal(err)
		}
		rp, _, err := prepared.Exec(q)
		if err != nil {
			t.Fatal(err)
		}
		if ri.Rows[0][0].String() != rp.Rows[0][0].String() {
			t.Errorf("%s: inline %s vs prepared %s", q, ri.Rows[0][0], rp.Rows[0][0])
		}
	}
}

// Each terminal's statement templates prepare once: the plan cache holds
// one statement per distinct template, not per execution.
func TestPreparedTerminalsCacheTemplates(t *testing.T) {
	cfg := Config{Warehouses: 2, DistrictsPerWH: 2, CustomersPerDistrict: 5, Items: 10, Seed: 1}
	srv, err := server.New(dialect.PG, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := Setup(srv, cfg); err != nil {
		t.Fatal(err)
	}
	d := NewTerminalDriver(cfg, DefaultMix(), 1)
	d.SetPrepared(true)
	sess := srv.NewSession()
	defer sess.Close()
	if _, err := d.run(sess, 100, false); err != nil {
		t.Fatal(err)
	}
	if d.cache == nil {
		t.Fatal("prepared driver did not attach")
	}
	// The full mix uses a bounded template set (well under one per
	// executed statement).
	if n := len(d.cache); n == 0 || n > 25 {
		t.Errorf("template cache holds %d statements", n)
	}
}
