package middleware

import (
	"fmt"
	"sync"
	"testing"

	"divsql/internal/dialect"
	"divsql/internal/fault"
	"divsql/internal/sql/ast"
)

// The acceptance scenario for live resync: donor sessions hold open
// transactions the whole time, yet the quarantined replica completes its
// rejoin — committed snapshot plus journal redo — and the held
// transactions later commit with every replica in agreement.
func TestResyncWhileDonorsHoldOpenTransactions(t *testing.T) {
	faults := []fault.Fault{{
		BugID:   "poison",
		Server:  dialect.OR,
		Trigger: fault.Trigger{Table: "POISON", Flag: ast.FlagInsert},
		Effect:  fault.Effect{Kind: fault.EffectError, Message: "spurious internal failure"},
	}}
	d := newDiverse(t, faults, dialect.PG, dialect.OR, dialect.IB)
	mustExec(t, d, "CREATE TABLE POISON (A INT)")
	mustExec(t, d, "CREATE TABLE CLEAN (A INT)")
	const holders = 3
	for h := 0; h < holders; h++ {
		mustExec(t, d, fmt.Sprintf("CREATE TABLE H%d (A INT)", h))
	}

	// Holder sessions open transactions and keep them open.
	var hs []*Session
	for h := 0; h < holders; h++ {
		s := d.NewSession()
		defer s.Close()
		hs = append(hs, s)
		for _, sql := range []string{
			"BEGIN TRANSACTION",
			fmt.Sprintf("INSERT INTO H%d VALUES (1)", h),
			fmt.Sprintf("INSERT INTO H%d VALUES (2)", h),
		} {
			if _, _, err := s.Exec(sql); err != nil {
				t.Fatalf("holder %d: %q: %v", h, sql, err)
			}
		}
	}

	// OR errors on the poison insert and is quarantined; the donors all
	// sit mid-transaction.
	mustExec(t, d, "INSERT INTO POISON VALUES (1)")
	if len(d.QuarantinedReplicas()) != 1 {
		t.Fatalf("quarantined: %v", d.QuarantinedReplicas())
	}

	// The next clean write rejoins OR even though every holder still has
	// its transaction open — the old design would have waited for a
	// global transaction boundary that never comes here.
	mustExec(t, d, "INSERT INTO CLEAN VALUES (1)")
	m := d.Metrics()
	if m.Resyncs == 0 {
		t.Fatalf("resync did not complete under open transactions: %+v", m)
	}
	// Redo shipping: each holder's journal (BEGIN + 2 inserts) was
	// replayed into the rejoined replica.
	if want := int64(holders * 3); m.JournalReplays < want {
		t.Errorf("journal replays: %d, want >= %d", m.JournalReplays, want)
	}
	if len(d.QuarantinedReplicas()) != 0 {
		t.Fatalf("replica did not rejoin: %v", d.QuarantinedReplicas())
	}

	// The held transactions keep working — including on the rejoined
	// replica, whose copy was re-established from the journals — and
	// commit to a state every replica agrees on.
	for h, s := range hs {
		for _, sql := range []string{
			fmt.Sprintf("INSERT INTO H%d VALUES (3)", h),
			"COMMIT",
		} {
			if _, _, err := s.Exec(sql); err != nil {
				t.Fatalf("holder %d: %q: %v", h, sql, err)
			}
		}
		res, _, err := d.Exec(fmt.Sprintf("SELECT COUNT(*) AS N FROM H%d", h))
		if err != nil {
			t.Fatalf("post-commit count on H%d: %v", h, err)
		}
		if res.Rows[0][0].I != 3 {
			t.Errorf("H%d rows: %d, want 3", h, res.Rows[0][0].I)
		}
	}
	m = d.Metrics()
	if m.DetectedSplits != 0 {
		t.Errorf("unexpected splits after rejoin: %+v", m)
	}
	if m.ReplicaErrors != 1 { // the single poison insert
		t.Errorf("replica errors: %+v", m)
	}
}

// Sustained concurrent transactional load (run with -race): writer
// sessions continuously cycle BEGIN..COMMIT/ROLLBACK while a poisoner
// repeatedly trips one replica's fault. Resyncs must keep completing
// mid-load, and once the fault stops firing the replica set must reach
// full agreement again.
func TestResyncUnderSustainedConcurrentLoad(t *testing.T) {
	faults := []fault.Fault{{
		BugID:   "poison",
		Server:  dialect.OR,
		Trigger: fault.Trigger{Table: "POISON", Flag: ast.FlagUpdate},
		Effect:  fault.Effect{Kind: fault.EffectError, Message: "spurious internal failure"},
	}}
	d := newDiverse(t, faults, dialect.PG, dialect.OR, dialect.IB)
	mustExec(t, d, "CREATE TABLE POISON (A INT)")
	mustExec(t, d, "INSERT INTO POISON VALUES (0)")
	const writers = 4
	for w := 0; w < writers; w++ {
		mustExec(t, d, fmt.Sprintf("CREATE TABLE W%d (A INT)", w))
	}

	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			s := d.NewSession()
			defer s.Close()
			for i := 0; i < 25; i++ {
				stmts := []string{
					"BEGIN TRANSACTION",
					fmt.Sprintf("INSERT INTO W%d VALUES (%d)", w, 2*i),
					fmt.Sprintf("INSERT INTO W%d VALUES (%d)", w, 2*i+1),
				}
				if i%4 == 0 {
					stmts = append(stmts, "ROLLBACK")
				} else {
					stmts = append(stmts, "COMMIT")
				}
				for _, sql := range stmts {
					if _, _, err := s.Exec(sql); err != nil {
						t.Errorf("writer %d: %q: %v", w, sql, err)
						return
					}
				}
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		s := d.NewSession()
		defer s.Close()
		for i := 0; i < 10; i++ {
			// OR errors here (outvoted) and is quarantined; concurrent
			// writer statements trigger the rejoin while transactions are
			// open all over the donor replicas.
			if _, _, err := s.Exec("UPDATE POISON SET A = A + 1"); err != nil {
				t.Errorf("poisoner: %v", err)
				return
			}
		}
	}()
	wg.Wait()

	// Stop poisoning; one more write flushes any pending rejoin.
	mustExec(t, d, "INSERT INTO POISON VALUES (99)")
	m := d.Metrics()
	if m.Resyncs == 0 {
		t.Fatalf("no resync completed under load: %+v", m)
	}
	if len(d.QuarantinedReplicas()) != 0 {
		t.Fatalf("replica still quarantined after load: %v", d.QuarantinedReplicas())
	}
	if m.DetectedSplits != 0 {
		t.Errorf("splits under majority configuration: %+v", m)
	}
	// Full agreement across the healed replica set.
	for w := 0; w < writers; w++ {
		before := d.Metrics().Unanimous
		res, _, err := d.Exec(fmt.Sprintf("SELECT COUNT(*) AS N FROM W%d", w))
		if err != nil {
			t.Fatalf("final count W%d: %v", w, err)
		}
		if res.Rows[0][0].I%2 != 0 {
			t.Errorf("W%d: odd committed row count %d (torn transaction)", w, res.Rows[0][0].I)
		}
		if d.Metrics().Unanimous != before+1 {
			t.Errorf("final count on W%d not unanimous", w)
		}
	}
}
