package middleware

import (
	"time"

	"divsql/internal/obs"
)

// This file is the middleware's observability surface: the adjudication
// counters of Metrics rendered as divsql_middleware_* families, the
// per-replica health state, and the resync-duration histogram. The
// per-replica engines contribute their own divsql_engine_* families
// through MetricsCollectors, labeled by replica name.

// resyncBuckets bounds the resync-duration histogram: a snapshot resync
// of the in-memory engines is sub-millisecond when small and grows with
// table cardinality and journal depth.
func resyncBuckets() []time.Duration {
	return []time.Duration{
		100 * time.Microsecond, 250 * time.Microsecond, 500 * time.Microsecond,
		time.Millisecond, 2500 * time.Microsecond, 5 * time.Millisecond,
		10 * time.Millisecond, 25 * time.Millisecond, 50 * time.Millisecond,
		100 * time.Millisecond, 250 * time.Millisecond, 500 * time.Millisecond,
		time.Second,
	}
}

// replicaHealth is one replica's health snapshot for the collector.
type replicaHealth struct {
	name        string
	quarantined bool
	suspicions  int
}

// replicaHealthSnapshot reads per-replica health under d.mu.
func (d *DiverseServer) replicaHealthSnapshot() []replicaHealth {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make([]replicaHealth, len(d.replicas))
	for i, r := range d.replicas {
		out[i] = replicaHealth{
			name:        string(r.srv.Name()),
			quarantined: r.quarantined,
			suspicions:  r.suspicions,
		}
	}
	return out
}

// sessionCount reads the live client-session count under d.mu.
func (d *DiverseServer) sessionCount() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.sessions)
}

// MetricsCollector returns the middleware's own obs collector: the
// adjudication counters, per-replica quarantine state and the resync
// duration histogram.
func (d *DiverseServer) MetricsCollector() obs.Collector {
	return obs.NewCollector("middleware", func(f *obs.Feed) {
		m := d.Metrics()
		f.Count("divsql_middleware_statements_total",
			"Statements adjudicated across the replica set.", uint64(m.Statements))
		f.Count("divsql_middleware_unanimous_total",
			"Statements on which every active replica agreed.", uint64(m.Unanimous))
		f.Count("divsql_middleware_masked_failures_total",
			"Outvoted wrong results masked by the majority.", uint64(m.MaskedFailures))
		f.Count("divsql_middleware_detected_splits_total",
			"Divergences detected but not maskable.", uint64(m.DetectedSplits))
		f.Count("divsql_middleware_replica_errors_total",
			"Replica error messages outvoted by healthy replicas.", uint64(m.ReplicaErrors))
		f.Count("divsql_middleware_crashes_detected_total",
			"Replica engine crashes detected.", uint64(m.CrashesDetected))
		f.Count("divsql_middleware_perf_outliers_total",
			"Replicas flagged as performance outliers.", uint64(m.PerfOutliers))
		f.Count("divsql_middleware_rephrase_recovered_total",
			"Splits recovered by dialect rephrasing.", uint64(m.RephraseRecovered))
		f.Count("divsql_middleware_resyncs_total",
			"Snapshot resyncs of quarantined replicas.", uint64(m.Resyncs))
		f.Count("divsql_middleware_journal_replays_total",
			"Journal statements replayed on top of resync snapshots.", uint64(m.JournalReplays))
		f.Count("divsql_middleware_idle_rejoins_total",
			"Resyncs completed by the idle-time rejoin path.", uint64(m.IdleRejoins))
		f.Gauge("divsql_middleware_last_resync_seq",
			"Donor commit high-water mark of the most recent resync.", float64(m.LastResyncSeq))
		f.Histo("divsql_middleware_resync_duration_seconds",
			"Wall-clock duration of snapshot resyncs (capture + restore + replay).",
			d.resyncDur)
		f.Gauge("divsql_middleware_sessions",
			"Live client sessions.", float64(d.sessionCount()))
		for _, rh := range d.replicaHealthSnapshot() {
			q := 0.0
			if rh.quarantined {
				q = 1
			}
			f.Gauge("divsql_middleware_replica_quarantined",
				"1 while the replica is quarantined.", q, obs.L("replica", rh.name))
			f.Gauge("divsql_middleware_replica_suspicions",
				"Consecutive suspicions against the replica.", float64(rh.suspicions),
				obs.L("replica", rh.name))
		}
	})
}

// MetricsCollectors returns the full collector set of a diverse
// deployment: the middleware collector plus one per-replica server
// collector (engine plan-cache, access paths, catalog gauges — labeled
// by replica).
func (d *DiverseServer) MetricsCollectors() []obs.Collector {
	return d.MetricsCollectorsWith()
}

// MetricsCollectorsWith is MetricsCollectors with extra labels appended
// to every sample. A sharded deployment runs N DiverseServers whose
// families would otherwise collide — divsql_middleware_last_resync_seq
// and friends carry no distinguishing labels of their own — so the
// shard router qualifies each shard's collectors with its shard label
// and the same-named families merge into per-shard series.
func (d *DiverseServer) MetricsCollectorsWith(extra ...obs.Label) []obs.Collector {
	cs := []obs.Collector{obs.Labeled(d.MetricsCollector(), extra...)}
	d.mu.Lock()
	for _, r := range d.replicas {
		cs = append(cs, obs.Labeled(r.srv.MetricsCollector(), extra...))
	}
	d.mu.Unlock()
	return cs
}
