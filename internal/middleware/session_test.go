package middleware

import (
	"fmt"
	"sync"
	"testing"

	"divsql/internal/dialect"
	"divsql/internal/fault"
	"divsql/internal/sql/ast"
)

// TestSessionsIndependentTransactions: BEGIN on one middleware session
// must not open (or affect) a transaction on another session.
func TestSessionsIndependentTransactions(t *testing.T) {
	d := newDiverse(t, nil, dialect.PG, dialect.OR, dialect.MS)
	a, b := d.NewSession(), d.NewSession()
	defer a.Close()
	defer b.Close()
	mustSess := func(cs *Session, q string) {
		t.Helper()
		if _, _, err := cs.Exec(q); err != nil {
			t.Fatalf("%q: %v", q, err)
		}
	}
	mustSess(a, "CREATE TABLE T (A INT)")
	mustSess(a, "BEGIN TRANSACTION")
	if _, _, err := b.Exec("COMMIT"); err == nil {
		t.Fatal("COMMIT on session b must fail while only a is in a transaction")
	}
	mustSess(a, "INSERT INTO T VALUES (1)")
	mustSess(a, "ROLLBACK")
	res, _, err := b.Exec("SELECT COUNT(*) AS N FROM T")
	if err != nil || res.Rows[0][0].I != 0 {
		t.Fatalf("rolled-back row visible: %v %v", res, err)
	}
	mustSess(b, "BEGIN TRANSACTION")
	mustSess(b, "INSERT INTO T VALUES (2)")
	mustSess(b, "COMMIT")
	res, _, err = a.Exec("SELECT COUNT(*) AS N FROM T")
	if err != nil || res.Rows[0][0].I != 1 {
		t.Fatalf("b's commit lost: %v %v", res, err)
	}
}

// TestConcurrentSessionsWithFaultInjection runs concurrent client
// sessions (disjoint tables) against a three-version diverse server with
// a wrong-result fault installed on one replica: the fault must be
// masked for every session and no spurious divergence may surface.
// Run with -race.
func TestConcurrentSessionsWithFaultInjection(t *testing.T) {
	faults := []fault.Fault{{
		BugID:   "wrong",
		Server:  dialect.PG,
		Trigger: fault.Trigger{Table: "C2", Flag: ast.FlagSelect},
		Effect:  fault.Effect{Kind: fault.EffectMutateResult, Mutation: fault.MutOffByOne},
	}}
	d := newDiverse(t, faults, dialect.PG, dialect.OR, dialect.MS)
	const sessions = 4
	const rounds = 10
	for i := 0; i < sessions; i++ {
		mustExec(t, d, fmt.Sprintf("CREATE TABLE C%d (X INT)", i))
	}
	var wg sync.WaitGroup
	for i := 0; i < sessions; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			cs := d.NewSession()
			defer cs.Close()
			tbl := fmt.Sprintf("C%d", i)
			for r := 0; r < rounds; r++ {
				if _, _, err := cs.Exec("BEGIN TRANSACTION"); err != nil {
					t.Errorf("session %d: %v", i, err)
					return
				}
				if _, _, err := cs.Exec(fmt.Sprintf("INSERT INTO %s VALUES (%d)", tbl, r)); err != nil {
					t.Errorf("session %d: %v", i, err)
					return
				}
				if _, _, err := cs.Exec("COMMIT"); err != nil {
					t.Errorf("session %d: %v", i, err)
					return
				}
				res, _, err := cs.Exec(fmt.Sprintf("SELECT COUNT(*) AS N FROM %s", tbl))
				if err != nil {
					t.Errorf("session %d: %v", i, err)
					return
				}
				if got := res.Rows[0][0].I; got != int64(r+1) {
					t.Errorf("session %d round %d: count %d (fault not masked?)", i, r, got)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	m := d.Metrics()
	if m.DetectedSplits != 0 {
		t.Errorf("spurious divergences under concurrency: %+v", m)
	}
	// The faulted replica (PG, off-by-one on C2 reads) was outvoted and
	// masked — the concurrent clients never saw the wrong count.
	if m.MaskedFailures == 0 {
		t.Errorf("fault never masked: %+v", m)
	}
}

// A replica suspected while a DIFFERENT session holds an open
// transaction on the donor no longer waits for that transaction to end:
// it rejoins on the next state-changing statement, with the sibling's
// open transaction carried over as journal redo on top of the donor's
// committed snapshot.
func TestResyncCarriesSiblingSessionTxn(t *testing.T) {
	faults := []fault.Fault{{
		BugID:   "err",
		Server:  dialect.MS,
		Trigger: fault.Trigger{Table: "T", Flag: ast.FlagUpdate},
		Effect:  fault.Effect{Kind: fault.EffectError, Message: "spurious"},
	}}
	d := newDiverse(t, faults, dialect.PG, dialect.OR, dialect.MS)
	a, b := d.NewSession(), d.NewSession()
	defer a.Close()
	defer b.Close()
	mustSess := func(cs *Session, q string) {
		t.Helper()
		if _, _, err := cs.Exec(q); err != nil {
			t.Fatalf("%q: %v", q, err)
		}
	}
	mustSess(a, "CREATE TABLE T (A INT)")
	mustSess(a, "CREATE TABLE U (A INT)")
	mustSess(a, "INSERT INTO T VALUES (1)")
	// b opens a transaction on another table and keeps it open.
	mustSess(b, "BEGIN TRANSACTION")
	mustSess(b, "INSERT INTO U VALUES (9)")
	// a triggers the spurious error on MS: MS is outvoted and quarantined.
	mustSess(a, "UPDATE T SET A = 2")
	if len(d.QuarantinedReplicas()) != 1 {
		t.Fatalf("quarantined: %v", d.QuarantinedReplicas())
	}
	// Reads never resync (in-flight reads of sibling sessions could be
	// racing on the shared path)...
	mustSess(a, "SELECT A FROM T")
	if len(d.QuarantinedReplicas()) != 1 {
		t.Fatalf("resync on the shared read path: %v", d.QuarantinedReplicas())
	}
	// ...but the very next write does, with b STILL mid-transaction.
	mustSess(a, "INSERT INTO T VALUES (7)")
	if len(d.QuarantinedReplicas()) != 0 {
		t.Fatalf("replica did not rejoin under b's open transaction: %v", d.QuarantinedReplicas())
	}
	if m := d.Metrics(); m.JournalReplays < 2 { // b's BEGIN + INSERT redone on MS
		t.Errorf("sibling transaction not redone: %+v", m)
	}
	// b's transaction was carried across the resync: its rollback must
	// remove the uncommitted row on every replica, unanimously.
	mustSess(b, "ROLLBACK")
	res, _, err := a.Exec("SELECT COUNT(*) AS N FROM U")
	if err != nil || res.Rows[0][0].I != 0 {
		t.Fatalf("after sibling rollback: %v %v", res, err)
	}
	res, _, err = a.Exec("SELECT A FROM T WHERE A = 2")
	if err != nil || len(res.Rows) != 1 {
		t.Fatalf("after resync: %v %v", res, err)
	}
	if m := d.Metrics(); m.DetectedSplits != 0 {
		t.Errorf("splits: %+v", m)
	}
}
