// Package middleware implements the fault-tolerant SQL server that the
// paper motivates: diverse modular redundancy over off-the-shelf servers.
// Every statement is broadcast to all replicas; the normalized results
// are adjudicated (detection with two replicas, masking by majority with
// three or more); failed or outvoted replicas are quarantined, restarted
// and resynchronized by state transfer from a healthy replica.
//
// Clients attach through sessions (NewSession): each client session maps
// to one session per replica, so transactions stay per-client and the
// broadcast + adjudication of each statement happens within the client's
// own session. Sessions execute concurrently: queries from different
// sessions run in parallel (sharing a read lock), while state-changing
// statements serialize across sessions so that every replica applies
// writes in the same order — the determinism replicated adjudication
// depends on.
//
// Resynchronization never waits for a global transaction boundary. A
// quarantined replica rejoins at the start of the next state-changing
// statement: the donor serves a copy-on-write snapshot of its COMMITTED
// state (engine.Snapshot — open transactions are rewound on the clone
// while the donor keeps executing), and the redo above the snapshot's
// high-water mark — each client session's in-flight transaction journal
// — is replayed into the replica's per-client sessions, re-establishing
// the open transactions the committed image necessarily excludes. Donor
// sessions can therefore sit mid-transaction under sustained load and
// the replica still completes its rejoin.
//
// Unlike the crash-only data-replication solutions the paper criticizes
// (see internal/replication for that baseline), this middleware detects
// and contains non-fail-stop failures: wrong results, spurious errors
// and performance outliers — exactly the failure classes Table 1 shows
// dominate the field data.
package middleware

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"time"

	"divsql/internal/core"
	"divsql/internal/engine"
	"divsql/internal/obs"
	"divsql/internal/server"
	"divsql/internal/sql/ast"
	"divsql/internal/sql/types"
)

// Sentinel errors.
var (
	// ErrNoReplicas is returned when a diverse server is built without
	// replicas.
	ErrNoReplicas = errors.New("diverse server needs at least one replica")
	// ErrAllReplicasFailed is returned when no replica produced a result.
	ErrAllReplicasFailed = errors.New("all replicas failed")
)

// DivergenceError reports a detected disagreement that could not be
// masked (a 1-1 split in a two-version configuration): the paper's
// "detection without masking" case. The client sees a detected failure
// instead of silently wrong data.
type DivergenceError struct {
	Replicas []string
	Detail   string
}

func (e *DivergenceError) Error() string {
	return fmt.Sprintf("replica divergence detected (%s): %s",
		strings.Join(e.Replicas, " vs "), e.Detail)
}

// ReadPolicy selects how queries (SELECTs) are executed. The paper's
// conclusions envisage exactly this dial: "The user could decide on an
// ongoing basis which architecture is giving the best trade-off between
// performance and dependability, from a single server to the most
// pessimistic fault-tolerant configuration (with tight synchronisation
// and comparison of results at each query)."
type ReadPolicy int

// Read policies.
const (
	// ReadCompareAll broadcasts every query and compares all results —
	// the most pessimistic configuration; full detection coverage.
	ReadCompareAll ReadPolicy = iota + 1
	// ReadOne sends queries to a single (rotating) replica and reserves
	// broadcasting/voting for state-changing statements. Faster, but a
	// replica's wrong query result reaches the client undetected — the
	// dependability cost is measured by BenchmarkMaskingAblation.
	ReadOne
)

// Config tunes the middleware.
type Config struct {
	// Compare configures result normalization (defaults to the paper's
	// representation-tolerant comparison).
	Compare core.CompareOptions
	// Reads selects the query execution policy (default ReadCompareAll).
	Reads ReadPolicy
	// Rephrase retries disagreeing replicas with a logically equivalent
	// rewriting of the query before quarantining them (the wrapper
	// approach of reference [9]); it masks Heisenbug-like divergences.
	Rephrase bool
	// AutoResync restores quarantined or crashed replicas from a healthy
	// replica's state and returns them to service.
	AutoResync bool
	// IdleRejoin bounds the quarantine window under read-only workloads:
	// a background poller grabs the exclusive statement lock whenever no
	// statement is pending and flushes pending resyncs, so a quarantined
	// replica does not wait for the next write statement. Requires
	// AutoResync.
	IdleRejoin bool
	// PerfThreshold flags a replica as a performance outlier when it is
	// slower than the fastest replica by at least this much. Zero
	// disables performance monitoring.
	PerfThreshold time.Duration
	// WallClock makes the adjudication loop spend the adjudicated
	// latency in real time, holding the statement lock for the duration
	// (exclusive for writes, shared for queries). By default the
	// replicas' simulated latencies are reported but not slept, which is
	// right for tests; with WallClock each replica set behaves like a
	// networked deployment whose adjudication loop is a real capacity
	// bottleneck — the regime the shard router's scaling benchmarks
	// measure.
	WallClock bool
}

// DefaultConfig returns the recommended configuration.
func DefaultConfig() Config {
	return Config{
		Compare:       core.DefaultCompareOptions(),
		Reads:         ReadCompareAll,
		Rephrase:      true,
		AutoResync:    true,
		IdleRejoin:    true,
		PerfThreshold: time.Second,
	}
}

// Metrics counts middleware events. Retrieve a consistent snapshot with
// DiverseServer.Metrics.
type Metrics struct {
	Statements        int64
	Unanimous         int64
	MaskedFailures    int64 // outvoted wrong results masked by majority
	DetectedSplits    int64 // divergences detected but not maskable
	ReplicaErrors     int64 // error messages outvoted by healthy replicas
	CrashesDetected   int64
	PerfOutliers      int64
	RephraseRecovered int64
	Resyncs           int64
	// JournalReplays counts redo statements shipped on top of committed
	// snapshots during resync (the open-transaction journals replayed
	// into a rejoining replica).
	JournalReplays int64
	// IdleRejoins counts resyncs completed by the idle-time rejoin path:
	// the statement write-lock grabbed in a gap between statements, so a
	// replica quarantined under a read-only workload does not wait for
	// the next write.
	IdleRejoins int64
	// LastResyncSeq is the donor commit high-water mark of the most
	// recent snapshot resync.
	LastResyncSeq uint64
}

// replica wraps one diverse server with its health state.
type replica struct {
	srv         *server.Server
	quarantined bool
	// pendingResync marks a quarantined replica that rejoins at the
	// start of the next state-changing statement, when the exclusive
	// statement lock guarantees no statement is in flight anywhere. The
	// donor does NOT have to be at a transaction boundary: the snapshot
	// carries committed state only and the open transactions are redone
	// from the session journals.
	pendingResync bool
	suspicions    int
}

// DiverseServer is the fault-tolerant diverse SQL server.
type DiverseServer struct {
	// mu guards the replica set, the metrics, the session registry and
	// the default session.
	mu       sync.Mutex
	cfg      Config
	replicas []*replica
	metrics  Metrics
	sessions map[*Session]struct{}
	def      *Session

	// execMu orders statements across sessions: state-changing statements
	// take it exclusively, so every replica applies writes in one global
	// order (and reads never interleave with a write broadcast, which
	// would surface as spurious divergence); queries share it, so
	// read-only sessions proceed in parallel. Session transaction
	// journals are written and read only while it is held exclusively.
	execMu sync.RWMutex

	// idleRejoinArmed marks a live idle-rejoin poller: a background
	// goroutine that tries to grab execMu exclusively between statements
	// so quarantined replicas rejoin without waiting for the next write
	// (bounding the quarantine window under read-only workloads).
	idleRejoinArmed bool

	// resyncDur records wall-clock duration of each snapshot resync
	// (capture + restore + journal replay). The histogram itself is
	// atomic; it is populated under the same locks as the resync.
	resyncDur *obs.Histogram
}

var (
	_ core.Executor         = (*DiverseServer)(nil)
	_ core.SessionExecutor  = (*DiverseServer)(nil)
	_ core.PreparedExecutor = (*DiverseServer)(nil)
	_ core.Session          = (*Session)(nil)
	_ core.PreparedExecutor = (*Session)(nil)
	_ core.Statement        = (*Stmt)(nil)
	_ core.Snapshotter      = (*DiverseServer)(nil)
)

// New assembles a diverse server from replicas. The replica set may mix
// any of the simulated servers; the paper's analysis corresponds to
// two-version (detection) and three-or-more (masking) configurations.
func New(cfg Config, servers ...*server.Server) (*DiverseServer, error) {
	if len(servers) == 0 {
		return nil, ErrNoReplicas
	}
	if cfg.Compare.FloatSigDigits == 0 && !cfg.Compare.OrderSensitive {
		cfg.Compare = core.DefaultCompareOptions()
	}
	d := &DiverseServer{
		cfg:       cfg,
		sessions:  make(map[*Session]struct{}),
		resyncDur: obs.NewHistogram(resyncBuckets()...),
	}
	for _, s := range servers {
		d.replicas = append(d.replicas, &replica{srv: s})
	}
	return d, nil
}

// Session is one client session of the diverse server: it holds one
// server session per replica, so the client's transaction scope spans
// the whole replica set while remaining invisible to other clients.
type Session struct {
	d *DiverseServer
	// mu serializes statements of this session (a session is one client).
	mu   sync.Mutex
	subs []*server.Session // index-aligned with d.replicas

	// inTxn and journal track the session's open transaction as redo for
	// resync: BEGIN plus every successfully adjudicated state-changing
	// statement since. Guarded by d.execMu held exclusively (the write
	// path), which is also when resync replays them.
	inTxn   bool
	journal []string
	// isoStmt is the session's last successful SET TRANSACTION issued
	// outside a transaction (the session-default isolation level), in
	// replayable form. A rejoining replica replays it before the
	// journal so the rebuilt per-client sessions carry the same
	// isolation defaults as their live siblings. Guarded by d.execMu
	// held exclusively, like the journal.
	isoStmt string
}

// NewSession opens a client session across every replica.
func (d *DiverseServer) NewSession() *Session {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.newSessionLocked()
}

func (d *DiverseServer) newSessionLocked() *Session {
	cs := &Session{d: d}
	for _, r := range d.replicas {
		cs.subs = append(cs.subs, r.srv.NewSession())
	}
	d.sessions[cs] = struct{}{}
	return cs
}

// OpenSession implements core.SessionExecutor.
func (d *DiverseServer) OpenSession() core.Session { return d.NewSession() }

// defaultSession backs the sessionless Exec convenience.
func (d *DiverseServer) defaultSession() *Session {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.def == nil {
		d.def = d.newSessionLocked()
	}
	return d.def
}

// classifierServer picks the replica that classifies statements: the
// first non-quarantined one, whose catalog reflects what the active set
// has applied (a quarantined replica may have missed DDL, e.g. a view
// wrapping a sequence call, and would misclassify queries over it).
// Falls back to replica 0 when everything is quarantined — the caller
// fails with ErrAllReplicasFailed anyway.
func (d *DiverseServer) classifierServer() *server.Server {
	d.mu.Lock()
	defer d.mu.Unlock()
	for _, r := range d.replicas {
		if !r.quarantined {
			return r.srv
		}
	}
	return d.replicas[0].srv
}

// Close rolls back the session's open transaction on every replica and
// releases the per-replica sessions.
func (cs *Session) Close() error {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	d := cs.d
	d.mu.Lock()
	delete(d.sessions, cs)
	if d.def == cs {
		d.def = nil
	}
	d.mu.Unlock()
	var first error
	for _, sub := range cs.subs {
		if err := sub.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// ReplicaNames lists the replica identities in order.
func (d *DiverseServer) ReplicaNames() []string {
	d.mu.Lock()
	defer d.mu.Unlock()
	names := make([]string, len(d.replicas))
	for i, r := range d.replicas {
		names[i] = string(r.srv.Name())
	}
	return names
}

// Metrics returns a snapshot of the counters. It is safe to call
// concurrently with statement execution: every writer of d.metrics
// (execAdjudicated, flushPendingResyncs, the crash/rephrase paths)
// increments under d.mu, and this copy is taken under the same lock, so
// the snapshot is internally consistent — all counters as of one moment
// between (not within) metric updates.
func (d *DiverseServer) Metrics() Metrics {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.metrics
}

// QuarantinedReplicas lists replicas currently out of service.
func (d *DiverseServer) QuarantinedReplicas() []string {
	d.mu.Lock()
	defer d.mu.Unlock()
	var out []string
	for _, r := range d.replicas {
		if r.quarantined {
			out = append(out, string(r.srv.Name()))
		}
	}
	return out
}

// Exec executes one statement on the default session (the sessionless
// convenience API).
func (d *DiverseServer) Exec(sql string) (*engine.Result, time.Duration, error) {
	return d.defaultSession().Exec(sql)
}

// Prepare prepares a statement on the default session (implements
// core.PreparedExecutor).
func (d *DiverseServer) Prepare(sql string) (core.Statement, error) {
	return d.defaultSession().Prepare(sql)
}

// Exec broadcasts one statement to every active replica within this
// session, adjudicates the responses and returns the agreed result. The
// reported latency is the slowest active replica's (replicas run in
// parallel).
func (cs *Session) Exec(sql string) (*engine.Result, time.Duration, error) {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	// A statement counts as a query only if it is genuinely read-only:
	// a SELECT that advances a sequence mutates replica state and must
	// go down the write path, or replicas would apply it in different
	// orders (spurious divergence) — and ReadOne would desynchronize
	// sequence state entirely. Any replica can classify; they share the
	// view/sequence schema.
	query := isQuery(sql) && cs.d.classifierServer().ReadOnly(sql)
	return cs.execBound(&boundStmt{sql: sql}, query)
}

// boundStmt is the unit the adjudication path executes: statement text
// and, when it came through Prepare, the per-replica prepared statements
// plus the typed argument vector of this execution.
type boundStmt struct {
	sql  string
	args []types.Value
	// stmts/prepErrs are index-aligned with the replica set when the
	// statement was prepared; nil for plain text execution. A replica
	// whose prepare failed votes with that error at execution time, so
	// divergent prepare-time acceptance is adjudicated like any other
	// outcome.
	stmts    []*server.Stmt
	prepErrs []error
}

// execOn runs the statement on one replica (identified by its index in
// the full replica set) through the given per-replica session.
func (b *boundStmt) execOn(idx int, sub *server.Session) (*engine.Result, time.Duration, error) {
	if b.stmts == nil {
		return sub.Exec(b.sql)
	}
	if err := b.prepErrs[idx]; err != nil {
		return nil, server.BaseLatency, err
	}
	return b.stmts[idx].Exec(b.args...)
}

// rephraseOn runs a rephrased form of the statement on one replica,
// keeping the original execution mode (text, or prepare+bind with the
// same arguments).
func (b *boundStmt) rephraseOn(sub *server.Session, rephrased string) (*engine.Result, time.Duration, error) {
	if b.stmts == nil {
		return sub.Exec(rephrased)
	}
	ps, err := sub.PrepareStmt(rephrased)
	if err != nil {
		return nil, 0, err
	}
	return ps.Exec(b.args...)
}

// entry renders the statement in its replayable journal form.
func (b *boundStmt) entry() string { return core.EncodeBound(b.sql, b.args) }

// execBound is the shared body of Exec and Stmt.Exec: lock-mode
// selection, broadcast adjudication and journal bookkeeping. The caller
// holds cs.mu.
func (cs *Session) execBound(b *boundStmt, query bool) (*engine.Result, time.Duration, error) {
	d := cs.d
	if query {
		d.execMu.RLock()
		defer d.execMu.RUnlock()
	} else {
		d.execMu.Lock()
		defer d.execMu.Unlock()
	}

	res, lat, err := cs.execAdjudicated(b, query)
	if d.cfg.WallClock && lat > 0 {
		// Model a networked replica set: the statement's adjudicated
		// latency passes in real time while the statement lock is held,
		// so this replica set's throughput is bounded by its one
		// adjudication loop — the bottleneck sharding multiplies.
		time.Sleep(lat)
	}
	if !query {
		// Journal bookkeeping (the exclusive statement lock is held): the
		// redo a rejoining replica needs on top of a committed snapshot is
		// exactly BEGIN plus the successfully adjudicated state-changing
		// statements of every open transaction. Bound statements are
		// journaled in their replayable encoded form.
		cs.noteWrite(b.sql, b.entry(), err)
	}
	return res, lat, err
}

// Stmt is a prepared statement of one middleware session: one prepared
// statement per replica, executed under the session's broadcast +
// adjudication. A replica that rejected the text at prepare time votes
// with its error on every execution — cross-replica divergence in
// prepare-time acceptance or bind-time coercion is contained exactly
// like any other failure. Implements core.Statement.
type Stmt struct {
	cs       *Session
	sql      string
	np       int
	isSelect bool
	stmts    []*server.Stmt
	prepErrs []error
}

// Prepare implements core.PreparedExecutor.
func (cs *Session) Prepare(sql string) (core.Statement, error) {
	st, err := cs.PrepareStmt(sql)
	if err != nil {
		return nil, err
	}
	return st, nil
}

// PrepareStmt prepares the statement on every replica session (each
// parses and dialect-checks once, through its per-session plan cache).
// It fails only when every replica rejects the text.
//
// The shared statement lock is held: resync journal replay (which runs
// under the exclusive lock, triggered by another session's write or the
// idle-rejoin poller) prepares bound entries into THIS session's
// per-replica sessions, and the plan caches it touches are
// single-client state — preparing concurrently with a replay would be
// a data race.
func (cs *Session) PrepareStmt(sql string) (*Stmt, error) {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	cs.d.execMu.RLock()
	defer cs.d.execMu.RUnlock()
	ps := &Stmt{
		cs:       cs,
		sql:      sql,
		np:       -1,
		stmts:    make([]*server.Stmt, len(cs.subs)),
		prepErrs: make([]error, len(cs.subs)),
	}
	var firstErr error
	for i, sub := range cs.subs {
		st, err := sub.PrepareStmt(sql)
		if err != nil {
			ps.prepErrs[i] = err
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		ps.stmts[i] = st
		if ps.np < 0 {
			ps.np = st.NumParams()
			_, ps.isSelect = st.Bound().(*ast.Select)
		}
	}
	if ps.np < 0 {
		return nil, firstErr
	}
	return ps, nil
}

// SQL returns the statement text as prepared.
func (ps *Stmt) SQL() string { return ps.sql }

// NumParams reports how many arguments Exec expects.
func (ps *Stmt) NumParams() int { return ps.np }

// Close releases the per-replica statements.
func (ps *Stmt) Close() error {
	for _, st := range ps.stmts {
		if st != nil {
			_ = st.Close()
		}
	}
	return nil
}

// Exec executes the prepared statement with the given arguments across
// the replica set, adjudicating the bound results.
func (ps *Stmt) Exec(args ...types.Value) (*engine.Result, time.Duration, error) {
	cs := ps.cs
	cs.mu.Lock()
	defer cs.mu.Unlock()
	if len(args) != ps.np {
		return nil, 0, fmt.Errorf("%w: statement wants %d parameters, %d bound",
			engine.ErrBind, ps.np, len(args))
	}
	query := ps.isSelect && ps.readOnlyOnClassifier()
	return cs.execBound(&boundStmt{
		sql: ps.sql, args: args, stmts: ps.stmts, prepErrs: ps.prepErrs,
	}, query)
}

// readOnlyOnClassifier classifies the prepared statement on the first
// active replica that accepted it (resolved per execution — view chains
// can change). With no such replica the statement conservatively takes
// the write path.
func (ps *Stmt) readOnlyOnClassifier() bool {
	d := ps.cs.d
	d.mu.Lock()
	defer d.mu.Unlock()
	for i, r := range d.replicas {
		if !r.quarantined && ps.stmts[i] != nil {
			return ps.stmts[i].ReadOnly()
		}
	}
	return false
}

// noteWrite maintains the session's open-transaction redo journal. sql
// classifies the statement; entry is the replayable (possibly bound)
// journal form. Must be called with d.execMu held exclusively.
func (cs *Session) noteWrite(sql, entry string, err error) {
	if err != nil {
		return // a failed statement changed no replica state
	}
	up := strings.ToUpper(strings.TrimSpace(sql))
	switch {
	case strings.HasPrefix(up, "BEGIN"):
		cs.inTxn = true
		cs.journal = append(cs.journal[:0], entry)
	case strings.HasPrefix(up, "COMMIT"), strings.HasPrefix(up, "ROLLBACK"):
		cs.inTxn = false
		cs.journal = nil
	case strings.HasPrefix(up, "SET"):
		// SET TRANSACTION outside a transaction sets the session
		// default (replayed on resync via isoStmt); inside one it is
		// transaction-scoped and replays with the journal.
		if cs.inTxn {
			cs.journal = append(cs.journal, entry)
		} else {
			cs.isoStmt = entry
		}
	default:
		if cs.inTxn {
			cs.journal = append(cs.journal, entry)
		}
	}
}

// execAdjudicated runs one statement through broadcast + adjudication.
// The caller holds cs.mu and d.execMu (shared for queries, exclusive for
// state-changing statements).
func (cs *Session) execAdjudicated(b *boundStmt, query bool) (*engine.Result, time.Duration, error) {
	d := cs.d
	d.mu.Lock()
	d.metrics.Statements++
	stmtNo := d.metrics.Statements
	if !query {
		// The exclusive statement lock is held: no statement is in
		// flight on any replica, so quarantined replicas can rejoin now
		// (committed snapshot + journal redo), in time to take part in
		// this statement's broadcast.
		d.flushPendingResyncs()
	}
	var active []*replica
	var activeIdx []int
	var subs []*server.Session
	for i, r := range d.replicas {
		if !r.quarantined {
			active = append(active, r)
			activeIdx = append(activeIdx, i)
			subs = append(subs, cs.subs[i])
		}
	}
	readOne := d.cfg.Reads == ReadOne && query && !anyInTxn(subs)
	d.mu.Unlock()

	if len(active) == 0 {
		return nil, 0, ErrAllReplicasFailed
	}
	if readOne {
		return cs.execReadOne(active, activeIdx, subs, b, stmtNo)
	}

	results := broadcast(active, activeIdx, subs, b)

	d.mu.Lock()
	defer d.mu.Unlock()

	// Performance containment: flag replicas slower than the fastest by
	// the configured threshold. (Their results still vote.)
	if d.cfg.PerfThreshold > 0 {
		fastest := time.Duration(-1)
		for _, rr := range results {
			if rr.Err == nil && (fastest < 0 || rr.Latency < fastest) {
				fastest = rr.Latency
			}
		}
		for _, rr := range results {
			if rr.Err == nil && fastest >= 0 && rr.Latency-fastest >= d.cfg.PerfThreshold {
				d.metrics.PerfOutliers++
			}
		}
	}

	verdict := core.Adjudicate(results, d.cfg.Compare)

	// Crash handling: restart and resync crashed replicas.
	for _, i := range verdict.CrashedIdx {
		d.metrics.CrashesDetected++
		d.recover(active[i], active, verdict)
	}

	if verdict.Agreed == nil && len(verdict.Errored) == len(results)-len(verdict.CrashedIdx) {
		// Every live replica returned an error: treat the (agreeing)
		// error as the statement's legitimate outcome.
		if len(verdict.Errored) > 0 {
			return nil, maxLatency(results), results[verdict.Errored[0]].Err
		}
		return nil, maxLatency(results), ErrAllReplicasFailed
	}

	// Error containment. Errors and successes are votes like any other
	// outcome: when more replicas error than agree on a result, the
	// error is taken as the statement's legitimate outcome and the
	// minority that accepted the statement is the suspect (this is how
	// silently-accepted invalid statements — the paper's "other
	// non-self-evident" failures — are contained). A 1-1 split in a
	// pair is detected but cannot be adjudicated.
	if len(verdict.Errored) > 0 && verdict.Agreed != nil {
		switch {
		case len(verdict.Errored) > len(verdict.AgreeIdx):
			d.metrics.MaskedFailures += int64(len(verdict.AgreeIdx))
			for _, i := range verdict.AgreeIdx {
				d.suspect(active[i], active, verdict)
			}
			return nil, maxLatency(results), results[verdict.Errored[0]].Err
		case len(verdict.Errored) == len(verdict.AgreeIdx) && len(verdict.Outliers) == 0:
			d.metrics.DetectedSplits++
			names := make([]string, 0, len(results))
			for _, rr := range results {
				names = append(names, rr.Name)
			}
			return nil, maxLatency(results), &DivergenceError{
				Replicas: names,
				Detail:   "one replica errored, the other succeeded: " + results[verdict.Errored[0]].Err.Error(),
			}
		default:
			d.metrics.ReplicaErrors += int64(len(verdict.Errored))
			for _, i := range verdict.Errored {
				d.suspect(active[i], active, verdict)
			}
		}
	}

	// Value containment: outvoted or split results.
	if len(verdict.Outliers) > 0 {
		recovered := d.tryRephrase(subs, results, verdict, b)
		if !recovered {
			if verdict.Majority {
				d.metrics.MaskedFailures += int64(len(verdict.Outliers))
				for _, i := range verdict.Outliers {
					d.suspect(active[i], active, verdict)
				}
			} else {
				d.metrics.DetectedSplits++
				names := make([]string, 0, len(results))
				for _, rr := range results {
					names = append(names, rr.Name)
				}
				return nil, maxLatency(results), &DivergenceError{
					Replicas: names,
					Detail:   core.Diff(results[verdict.AgreeIdx[0]].Res, results[verdict.Outliers[0]].Res, d.cfg.Compare),
				}
			}
		}
	}

	if verdict.Unanimous {
		d.metrics.Unanimous++
	}
	return verdict.Agreed, maxLatency(results), nil
}

// broadcast runs the statement on every active replica concurrently,
// through this session's per-replica sessions (prepared statements when
// the boundStmt carries them).
func broadcast(active []*replica, activeIdx []int, subs []*server.Session, b *boundStmt) []core.ReplicaResult {
	results := make([]core.ReplicaResult, len(active))
	var wg sync.WaitGroup
	for i := range active {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			res, lat, err := b.execOn(activeIdx[i], subs[i])
			results[i] = core.ReplicaResult{
				Name:    string(active[i].srv.Name()),
				Res:     res,
				Err:     err,
				Crashed: errors.Is(err, server.ErrCrashed),
				Latency: lat,
			}
		}(i)
	}
	wg.Wait()
	return results
}

// tryRephrase re-executes the statement, rewritten into a logically
// equivalent form, on the outlier replicas (within the same session); if
// the rephrased query now agrees with the majority the divergence is
// treated as transient. Bound statements are re-prepared in rephrased
// form and executed with the same arguments.
func (d *DiverseServer) tryRephrase(subs []*server.Session, results []core.ReplicaResult, verdict core.Verdict, b *boundStmt) bool {
	if !d.cfg.Rephrase || verdict.Agreed == nil {
		return false
	}
	rephrased, changed := Rephrase(b.sql)
	if !changed {
		return false
	}
	agreedDigest := core.Digest(verdict.Agreed, d.cfg.Compare)
	allRecovered := true
	for _, i := range verdict.Outliers {
		res, _, err := b.rephraseOn(subs[i], rephrased)
		if err != nil || core.Digest(res, d.cfg.Compare) != agreedDigest {
			allRecovered = false
			break
		}
	}
	if allRecovered {
		d.metrics.RephraseRecovered++
	}
	return allRecovered
}

// suspect records a replica misbehaviour and schedules it for
// resynchronization from a healthy peer so that error propagation is
// contained.
func (d *DiverseServer) suspect(r *replica, active []*replica, verdict core.Verdict) {
	r.suspicions++
	d.recover(r, active, verdict)
}

// recover restarts a crashed replica and quarantines it for resync when
// a healthy donor exists. The resync itself happens at the start of the
// next state-changing statement (flushPendingResyncs), when the
// exclusive statement lock guarantees no statement is mid-flight on any
// replica — at most one statement away, never a wait for a transaction
// boundary. Suspicion raised on the shared query path thus cannot
// mutate a replica out from under a sibling session's in-flight read.
func (d *DiverseServer) recover(r *replica, active []*replica, verdict core.Verdict) {
	if !d.cfg.AutoResync {
		r.quarantined = true
		return
	}
	if r.srv.Crashed() {
		r.srv.Restart()
	}
	donorExists := false
	for _, i := range verdict.AgreeIdx {
		if active[i] != r {
			donorExists = true
			break
		}
	}
	if !donorExists {
		// No healthy donor: keep the replica in service with its own
		// state (it may still agree on subsequent statements).
		return
	}
	r.quarantined = true
	r.pendingResync = true
	// Under a write-bearing workload the next state-changing statement
	// completes the rejoin; under a read-only workload none may come, so
	// an idle-time poller grabs the statement lock in a gap between
	// statements and bounds the quarantine window.
	d.armIdleRejoin()
}

// idleRejoinInterval is the poll period of the idle-time rejoin;
// idleRejoinMaxTries bounds the poller's lifetime (it re-arms on the
// next quarantine), so a replica with no available donor cannot pin a
// goroutine forever.
const (
	idleRejoinInterval = time.Millisecond
	idleRejoinMaxTries = 4000
)

// idleRejoinEscalate is the number of consecutive TryLock misses after
// which the poller acquires the statement lock blockingly: under
// sustained read-only load no idle gap ever appears, and a brief
// writer-preference acquisition (current readers drain, new ones wait
// one statement's worth) is what actually bounds the quarantine window.
const idleRejoinEscalate = 20

// armIdleRejoin starts the idle-time rejoin poller unless one is already
// live. Called with d.mu held.
func (d *DiverseServer) armIdleRejoin() {
	if !d.cfg.AutoResync || !d.cfg.IdleRejoin || d.idleRejoinArmed {
		return
	}
	d.idleRejoinArmed = true
	go d.idleRejoinLoop()
}

// idleRejoinLoop waits for a gap in the statement stream: when no
// statement is pending anywhere, TryLock acquires the exclusive
// statement lock immediately — the same invariant the write path relies
// on, reached without waiting for a write — and the pending resyncs
// flush. When the read stream never pauses, the poller escalates to a
// blocking acquisition, pausing reads for one resync like an ordinary
// write statement would.
func (d *DiverseServer) idleRejoinLoop() {
	misses := 0
	for i := 0; i < idleRejoinMaxTries; i++ {
		time.Sleep(idleRejoinInterval)
		locked := d.execMu.TryLock()
		if !locked && misses+1 < idleRejoinEscalate {
			misses++
			d.mu.Lock()
			pending := d.anyPendingResync()
			if !pending {
				d.idleRejoinArmed = false
				d.mu.Unlock()
				return // the write path beat us to it
			}
			d.mu.Unlock()
			continue
		}
		if !locked {
			d.execMu.Lock()
		}
		misses = 0
		d.mu.Lock()
		before := d.metrics.Resyncs
		d.flushPendingResyncs()
		d.metrics.IdleRejoins += d.metrics.Resyncs - before
		pending := d.anyPendingResync()
		if !pending {
			d.idleRejoinArmed = false
		}
		d.mu.Unlock()
		d.execMu.Unlock()
		if !pending {
			return
		}
	}
	d.mu.Lock()
	d.idleRejoinArmed = false
	d.mu.Unlock()
}

// anyPendingResync reports whether any replica still waits for resync.
// Called with d.mu held.
func (d *DiverseServer) anyPendingResync() bool {
	for _, r := range d.replicas {
		if r.pendingResync {
			return true
		}
	}
	return false
}

// flushPendingResyncs rejoins quarantined replicas from any healthy
// donor. Called with d.mu held and d.execMu held exclusively.
//
// The donor does not have to be idle: its committed state is captured
// copy-on-write at this instant (open transactions rewound on the
// clone), and the redo above the snapshot — every client session's
// open-transaction journal — is replayed into the rejoining replica's
// per-client sessions. A journal statement that re-triggers the
// replica's own fault simply fails there again and will be outvoted on
// the next adjudication; containment, not repair, is the contract.
func (d *DiverseServer) flushPendingResyncs() {
	for idx, r := range d.replicas {
		if !r.pendingResync {
			continue
		}
		var donor *replica
		for _, cand := range d.replicas {
			if cand != r && !cand.quarantined && !cand.srv.Crashed() {
				donor = cand
				break
			}
		}
		if donor == nil {
			continue // try again on a later statement
		}
		start := time.Now()
		snap := donor.srv.Snapshot()
		r.srv.Restore(snap)
		for cs := range d.sessions {
			if cs.isoStmt != "" {
				// Restore the session-default isolation level first: the
				// journal below may open a transaction that inherits it.
				// A replica whose dialect rejects the level fails here
				// exactly as it did live.
				_, _, _ = core.ExecEntry(cs.subs[idx], cs.isoStmt)
			}
			if !cs.inTxn {
				continue
			}
			for _, entry := range cs.journal {
				// Bound journal entries replay through the replica's
				// prepare/bind path (core.ExecEntry decodes the args).
				_, _, _ = core.ExecEntry(cs.subs[idx], entry)
				d.metrics.JournalReplays++
			}
		}
		r.pendingResync = false
		r.quarantined = false
		d.metrics.Resyncs++
		d.metrics.LastResyncSeq = snap.CommitSeq
		d.resyncDur.Observe(time.Since(start))
	}
}

// Snapshot returns a committed-state image of the first healthy replica
// (the diverse server's own consistent snapshot, usable to seed another
// endpoint). It shares the statement lock, so the image aligns with a
// statement boundary of the global write order. Implements
// core.Snapshotter.
func (d *DiverseServer) Snapshot() *engine.State {
	d.execMu.RLock()
	defer d.execMu.RUnlock()
	d.mu.Lock()
	defer d.mu.Unlock()
	for _, r := range d.replicas {
		if !r.quarantined && !r.srv.Crashed() {
			return r.srv.Snapshot()
		}
	}
	return d.replicas[0].srv.Snapshot()
}

// Restore installs a snapshot on every replica, discarding open
// transactions. It takes the statement lock exclusively (no statement
// may be mid-broadcast) and resets every client session's transaction
// tracking to match the replicas' post-restore state — stale journals
// would otherwise be replayed into the next rejoining replica as
// phantom transactions no donor has. Implements core.Snapshotter.
func (d *DiverseServer) Restore(st *engine.State) {
	d.execMu.Lock()
	defer d.execMu.Unlock()
	d.mu.Lock()
	defer d.mu.Unlock()
	for _, r := range d.replicas {
		r.srv.Restore(st)
	}
	for cs := range d.sessions {
		cs.inTxn = false
		cs.journal = nil
	}
}

// execReadOne serves a query from a single rotating replica; crashed
// replicas fail over to the next one. Results are NOT compared: this is
// the performance end of the paper's trade-off dial.
func (cs *Session) execReadOne(active []*replica, activeIdx []int, subs []*server.Session, b *boundStmt, stmtNo int64) (*engine.Result, time.Duration, error) {
	d := cs.d
	n := len(active)
	start := int(stmtNo) % n
	for i := 0; i < n; i++ {
		k := (start + i) % n
		res, lat, err := b.execOn(activeIdx[k], subs[k])
		if errors.Is(err, server.ErrCrashed) {
			d.mu.Lock()
			d.metrics.CrashesDetected++
			autoResync := d.cfg.AutoResync
			d.mu.Unlock()
			if autoResync {
				active[k].srv.Restart()
			}
			continue
		}
		return res, lat, err
	}
	return nil, 0, ErrAllReplicasFailed
}

// anyInTxn reports whether any of the session's replica sessions has an
// open transaction (queries inside transactions must see the
// transaction's own writes, so they are always broadcast).
func anyInTxn(subs []*server.Session) bool {
	for _, sub := range subs {
		if sub.InTxn() {
			return true
		}
	}
	return false
}

func isQuery(sql string) bool {
	return strings.HasPrefix(strings.ToUpper(strings.TrimSpace(sql)), "SELECT")
}

func maxLatency(results []core.ReplicaResult) time.Duration {
	var m time.Duration
	for _, r := range results {
		if r.Latency > m {
			m = r.Latency
		}
	}
	return m
}
