package middleware

import (
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"divsql/internal/dialect"
	"divsql/internal/fault"
	"divsql/internal/sql/ast"
	"divsql/internal/sql/types"
)

func TestPreparedAdjudicatedAgreement(t *testing.T) {
	d := newDiverse(t, nil, dialect.PG, dialect.OR, dialect.MS)
	mustExec(t, d, "CREATE TABLE T (A INT, S VARCHAR(10))")
	sess := d.NewSession()
	defer sess.Close()
	ins, err := sess.PrepareStmt("INSERT INTO T VALUES (?, ?)")
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(1); i <= 3; i++ {
		if _, _, err := ins.Exec(types.NewInt(i), types.NewString("v")); err != nil {
			t.Fatal(err)
		}
	}
	sel, err := sess.PrepareStmt("SELECT A FROM T WHERE A >= $1 ORDER BY A")
	if err != nil {
		t.Fatal(err)
	}
	res, _, err := sel.Exec(types.NewInt(2))
	if err != nil || len(res.Rows) != 2 || res.Rows[0][0].I != 2 {
		t.Fatalf("bound select: %+v %v", res, err)
	}
	if m := d.Metrics(); m.Unanimous == 0 {
		t.Errorf("prepared executions must be adjudicated: %+v", m)
	}
}

func TestPreparedBindCoercionIsAdjudicated(t *testing.T) {
	// OR binds '' as NULL; PG and IB store the empty string. In a triple
	// the majority outvotes OR and the divergence is masked, exactly like
	// any wrong-result failure.
	d := newDiverse(t, nil, dialect.PG, dialect.IB, dialect.OR)
	mustExec(t, d, "CREATE TABLE T (S VARCHAR(10))")
	sess := d.NewSession()
	defer sess.Close()
	ins, err := sess.PrepareStmt("INSERT INTO T VALUES ($1)")
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := ins.Exec(types.NewString("")); err != nil {
		t.Fatal(err)
	}
	res, _, err := sess.Exec("SELECT S FROM T WHERE S IS NULL")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 0 {
		t.Errorf("majority stores '', so IS NULL must match nothing: %+v", res)
	}
	if m := d.Metrics(); m.MaskedFailures+m.DetectedSplits == 0 {
		t.Errorf("OR's bind coercion must surface in adjudication: %+v", m)
	}
}

func TestPreparedJournalReplayOnResync(t *testing.T) {
	// A replica quarantined while a session's transaction is open must
	// receive the bound writes of that transaction as journal redo —
	// through the prepare/bind path, not text interpolation.
	faults := []fault.Fault{{
		BugID:   "poison",
		Server:  dialect.OR,
		Trigger: fault.Trigger{Table: "POISON", Flag: ast.FlagInsert},
		Effect:  fault.Effect{Kind: fault.EffectError, Message: "spurious internal failure"},
	}}
	d := newDiverse(t, faults, dialect.PG, dialect.OR, dialect.IB)
	mustExec(t, d, "CREATE TABLE POISON (A INT)")
	mustExec(t, d, "CREATE TABLE H (A INT, S VARCHAR(10))")

	holder := d.NewSession()
	defer holder.Close()
	if _, _, err := holder.Exec("BEGIN TRANSACTION"); err != nil {
		t.Fatal(err)
	}
	ins, err := holder.PrepareStmt("INSERT INTO H VALUES ($1, $2)")
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := ins.Exec(types.NewInt(1), types.NewString("bound")); err != nil {
		t.Fatal(err)
	}

	// Quarantine OR, then trigger the rejoin with a clean write. The
	// journal replay must re-establish holder's open transaction —
	// including the bound insert — on OR.
	mustExec(t, d, "INSERT INTO POISON VALUES (1)")
	if len(d.QuarantinedReplicas()) != 1 {
		t.Fatalf("quarantined: %v", d.QuarantinedReplicas())
	}
	mustExec(t, d, "INSERT INTO POISON VALUES (2)") // PG/IB apply; OR rejoins first
	if m := d.Metrics(); m.Resyncs == 0 || m.JournalReplays == 0 {
		t.Fatalf("metrics: %+v", m)
	}
	if _, _, err := holder.Exec("COMMIT"); err != nil {
		t.Fatal(err)
	}
	res, _, err := d.Exec("SELECT S FROM H WHERE A = 1")
	if err != nil || len(res.Rows) != 1 || res.Rows[0][0].S != "bound" {
		t.Fatalf("replayed transaction: %+v %v", res, err)
	}
}

func TestPreparedDialectRejectionVotes(t *testing.T) {
	// MS has no sequences: its prepare fails, and on execution its error
	// votes against the replicas that accepted the statement.
	d := newDiverse(t, nil, dialect.PG, dialect.OR, dialect.MS)
	sess := d.NewSession()
	defer sess.Close()
	ps, err := sess.PrepareStmt("CREATE SEQUENCE SQ1")
	if err != nil {
		t.Fatal(err) // two of three accepted: prepare succeeds
	}
	if _, _, err := ps.Exec(); err != nil {
		t.Fatalf("majority accepted the statement: %v", err)
	}
	if m := d.Metrics(); m.ReplicaErrors == 0 {
		t.Errorf("MS's rejection must be outvoted and counted: %+v", m)
	}
}

func TestIdleRejoinUnderReadOnlyLoad(t *testing.T) {
	// Acceptance for the ROADMAP item: a replica quarantined under a
	// sustained read-only workload rejoins without any write statement —
	// the idle-time poller grabs the statement lock between reads.
	faults := []fault.Fault{{
		BugID:   "wrongread",
		Server:  dialect.OR,
		Trigger: fault.Trigger{Table: "T", Flag: ast.FlagGroupBy},
		Effect:  fault.Effect{Kind: fault.EffectMutateResult, Mutation: fault.MutOffByOne},
	}}
	cfg := DefaultConfig()
	cfg.Rephrase = false
	d, err := New(cfg, newServers(t, faults, dialect.PG, dialect.IB, dialect.OR)...)
	if err != nil {
		t.Fatal(err)
	}
	mustExec(t, d, "CREATE TABLE T (A INT)")
	mustExec(t, d, "INSERT INTO T VALUES (5)")

	// OR returns a wrong (mutated) result on the grouped read, is
	// outvoted and quarantined.
	if _, _, err := d.Exec("SELECT A, COUNT(*) AS N FROM T GROUP BY A"); err != nil {
		t.Fatal(err)
	}
	if len(d.QuarantinedReplicas()) != 1 {
		t.Fatalf("quarantined: %v", d.QuarantinedReplicas())
	}

	// Sustained read-only load only; no writes ever. The quarantine
	// window must still close.
	deadline := time.Now().Add(5 * time.Second)
	for len(d.QuarantinedReplicas()) > 0 && time.Now().Before(deadline) {
		if _, _, err := d.Exec("SELECT A FROM T"); err != nil {
			t.Fatal(err)
		}
	}
	if q := d.QuarantinedReplicas(); len(q) != 0 {
		t.Fatalf("replica still quarantined after read-only window: %v", q)
	}
	m := d.Metrics()
	if m.IdleRejoins == 0 || m.Resyncs == 0 {
		t.Errorf("rejoin must be attributed to the idle path: %+v", m)
	}
	// The rejoined replica serves agreeing reads again.
	res, _, err := d.Exec("SELECT A, COUNT(*) AS N FROM T GROUP BY A")
	if err != nil || len(res.Rows) != 1 {
		t.Fatalf("post-rejoin read: %+v %v", res, err)
	}
}

// Prepare on one session must not race resync journal replay triggered
// by another session's writes: the replay (exclusive statement lock)
// prepares bound journal entries into the first session's per-replica
// sessions, whose plan caches are unlocked single-client state. Run
// under -race; before PrepareStmt shared the statement lock this was a
// concurrent map write.
func TestPrepareDoesNotRaceJournalReplay(t *testing.T) {
	faults := []fault.Fault{{
		BugID:   "poison",
		Server:  dialect.OR,
		Trigger: fault.Trigger{Table: "POISON", Flag: ast.FlagInsert},
		Effect:  fault.Effect{Kind: fault.EffectError, Message: "spurious internal failure"},
	}}
	d := newDiverse(t, faults, dialect.PG, dialect.OR, dialect.IB)
	mustExec(t, d, "CREATE TABLE POISON (A INT)")
	mustExec(t, d, "CREATE TABLE H (A INT)")

	holder := d.NewSession()
	defer holder.Close()
	if _, _, err := holder.Exec("BEGIN TRANSACTION"); err != nil {
		t.Fatal(err)
	}
	ins, err := holder.PrepareStmt("INSERT INTO H VALUES ($1)")
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := ins.Exec(types.NewInt(1)); err != nil {
		t.Fatal(err)
	}

	writer := d.NewSession()
	defer writer.Close()
	done := make(chan struct{})
	go func() {
		defer close(done)
		// Each poison insert quarantines OR; each following write flushes
		// the pending resync and replays holder's bound journal into
		// holder's OR session.
		for i := 0; i < 30; i++ {
			_, _, _ = writer.Exec("INSERT INTO POISON VALUES (1)")
			_, _, _ = writer.Exec("INSERT INTO H VALUES (1000)")
		}
	}()
	// Meanwhile the holder keeps preparing fresh texts (distinct plans,
	// so every call writes its per-replica plan caches).
	for i := 0; i < 60; i++ {
		st, err := holder.PrepareStmt(fmt.Sprintf("SELECT A FROM H WHERE A = %d", i))
		if err != nil {
			t.Fatal(err)
		}
		_ = st.Close()
	}
	<-done
	if _, _, err := holder.Exec("ROLLBACK"); err != nil {
		t.Fatal(err)
	}
}

func TestPreparedArgCountMismatch(t *testing.T) {
	d := newDiverse(t, nil, dialect.PG, dialect.OR)
	mustExec(t, d, "CREATE TABLE T (A INT)")
	sess := d.NewSession()
	defer sess.Close()
	ps, err := sess.PrepareStmt("SELECT A FROM T WHERE A = ?")
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := ps.Exec(); err == nil || !strings.Contains(err.Error(), "bind error") {
		t.Errorf("missing args: %v", err)
	}
	var all error
	if _, _, all = ps.Exec(types.NewInt(1), types.NewInt(2)); all == nil {
		t.Error("extra args must fail")
	}
	if errors.Is(all, ErrAllReplicasFailed) {
		t.Error("arg-count mismatch must fail before any broadcast")
	}
}
