package middleware

import (
	"testing"

	"divsql/internal/dialect"
	"divsql/internal/fault"
	"divsql/internal/sql/ast"
)

// A session's isolation level must survive journal-replay resync: the
// rebuilt per-client sessions on a rejoined replica replay the
// session's SET TRANSACTION before its journal, so a snapshot-level
// transaction opened after the rejoin pins its read view on every
// replica — including the rebuilt one. If the level were lost, the
// rebuilt replica would run READ COMMITTED, see concurrent commits the
// others hide, and diverge on the re-read. SERIALIZABLE is the one
// snapshot-semantics spelling every dialect in the replica set accepts.
func TestResyncPreservesSessionIsolationLevel(t *testing.T) {
	faults := []fault.Fault{{
		BugID:   "poison",
		Server:  dialect.OR,
		Trigger: fault.Trigger{Table: "POISON", Flag: ast.FlagInsert},
		Effect:  fault.Effect{Kind: fault.EffectError, Message: "spurious internal failure"},
	}}
	d := newDiverse(t, faults, dialect.PG, dialect.OR, dialect.IB)
	mustExec(t, d, "CREATE TABLE POISON (A INT)")
	mustExec(t, d, "CREATE TABLE CLEAN (A INT)")
	mustExec(t, d, "CREATE TABLE T (A INT)")
	for i := 1; i <= 3; i++ {
		mustExec(t, d, "INSERT INTO T VALUES (1)")
	}

	// The session declares its level before the fault trips; the
	// middleware records it for replay into rebuilt sessions.
	s := d.NewSession()
	defer s.Close()
	if _, _, err := s.Exec("SET TRANSACTION ISOLATION LEVEL SERIALIZABLE"); err != nil {
		t.Fatalf("set isolation: %v", err)
	}

	// Quarantine OR, then rejoin it via the next clean write. The
	// rebuilt sessions are re-established from committed snapshot plus
	// journal redo, prefixed by each session's recorded SET TRANSACTION.
	mustExec(t, d, "INSERT INTO POISON VALUES (1)")
	if len(d.QuarantinedReplicas()) != 1 {
		t.Fatalf("quarantined: %v", d.QuarantinedReplicas())
	}
	mustExec(t, d, "INSERT INTO CLEAN VALUES (1)")
	if len(d.QuarantinedReplicas()) != 0 {
		t.Fatalf("replica did not rejoin: %v", d.QuarantinedReplicas())
	}
	if d.Metrics().Resyncs == 0 {
		t.Fatalf("no resync completed: %+v", d.Metrics())
	}

	// Snapshot level on the resynced session: the first read pins the
	// view; a concurrent commit must stay invisible on every replica.
	if _, _, err := s.Exec("BEGIN TRANSACTION"); err != nil {
		t.Fatalf("begin: %v", err)
	}
	res, _, err := s.Exec("SELECT COUNT(*) AS N FROM T")
	if err != nil {
		t.Fatalf("first read: %v", err)
	}
	first := res.Rows[0][0].I
	if first != 3 {
		t.Fatalf("first read: %d rows, want 3", first)
	}
	mustExec(t, d, "INSERT INTO T VALUES (99)") // commits on all replicas

	res, _, err = s.Exec("SELECT COUNT(*) AS N FROM T")
	if err != nil {
		t.Fatalf("re-read: %v", err)
	}
	if res.Rows[0][0].I != first {
		t.Fatalf("re-read saw %d rows inside snapshot transaction, want %d", res.Rows[0][0].I, first)
	}
	// A replica that lost the level would have answered with 4 and been
	// outvoted back into quarantine.
	if len(d.QuarantinedReplicas()) != 0 {
		t.Fatalf("re-read diverged on a replica: %v", d.QuarantinedReplicas())
	}
	if m := d.Metrics(); m.DetectedSplits != 0 {
		t.Fatalf("splits during isolated re-read: %+v", m)
	}

	// Ending the transaction surfaces the concurrent commit.
	if _, _, err := s.Exec("COMMIT"); err != nil {
		t.Fatalf("commit: %v", err)
	}
	res, _, err = s.Exec("SELECT COUNT(*) AS N FROM T")
	if err != nil {
		t.Fatalf("post-commit read: %v", err)
	}
	if res.Rows[0][0].I != first+1 {
		t.Fatalf("post-commit read: %d rows, want %d", res.Rows[0][0].I, first+1)
	}
}
