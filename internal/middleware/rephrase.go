package middleware

import (
	"divsql/internal/sql/ast"
	"divsql/internal/sql/parser"
)

// Rephrase rewrites a statement into a logically equivalent form, the
// wrapper technique of the paper's reference [9] ("wrappers rephrasing
// queries into alternative, logically equivalent sets of statements").
// A rephrased query exercises different code paths in a server, so a
// replica that failed through a Heisenbug or a narrow failure region may
// answer the rephrased form correctly.
//
// Rewritings applied (bottom-up, all semantics-preserving):
//
//   - x BETWEEN a AND b      ->  x >= a AND x <= b
//   - x IN (v1, v2, ...)     ->  x = v1 OR x = v2 OR ...
//   - a AND b / a OR b       ->  b AND a / b OR a (operand commutation)
//   - a = b (literals last)  ->  b = a
//
// It returns the rewritten SQL and whether anything changed.
func Rephrase(sql string) (string, bool) {
	st, err := parser.Parse(sql)
	if err != nil {
		return sql, false
	}
	r := &rephraser{}
	r.statement(st)
	if !r.changed {
		return sql, false
	}
	return ast.Render(st), true
}

type rephraser struct {
	changed bool
}

func (r *rephraser) statement(st ast.Statement) {
	switch x := st.(type) {
	case *ast.Select:
		r.sel(x)
	case *ast.Update:
		x.Where = r.expr(x.Where)
	case *ast.Delete:
		x.Where = r.expr(x.Where)
	case *ast.Insert:
		if x.Select != nil {
			r.sel(x.Select)
		}
	}
}

func (r *rephraser) sel(s *ast.Select) {
	if s == nil {
		return
	}
	s.Where = r.expr(s.Where)
	s.Having = r.expr(s.Having)
	for i := range s.From {
		for j := range s.From[i].Joins {
			s.From[i].Joins[j].On = r.expr(s.From[i].Joins[j].On)
		}
		if s.From[i].Table.Subquery != nil {
			r.sel(s.From[i].Table.Subquery)
		}
	}
	r.sel(s.Union)
}

func (r *rephraser) expr(e ast.Expr) ast.Expr {
	switch x := e.(type) {
	case nil:
		return nil
	case *ast.Between:
		lo := &ast.Binary{Op: ast.OpGe, L: x.X, R: x.Lo}
		hi := &ast.Binary{Op: ast.OpLe, L: x.X, R: x.Hi}
		r.changed = true
		var out ast.Expr = &ast.Binary{Op: ast.OpAnd, L: lo, R: hi}
		if x.Not {
			out = &ast.Unary{Op: "NOT", X: out}
		}
		return out
	case *ast.In:
		if x.Select == nil && len(x.List) > 0 && len(x.List) <= 8 {
			var out ast.Expr
			for _, item := range x.List {
				eq := ast.Expr(&ast.Binary{Op: ast.OpEq, L: x.X, R: item})
				if out == nil {
					out = eq
				} else {
					out = &ast.Binary{Op: ast.OpOr, L: out, R: eq}
				}
			}
			r.changed = true
			if x.Not {
				return &ast.Unary{Op: "NOT", X: out}
			}
			return out
		}
		return x
	case *ast.Binary:
		x.L = r.expr(x.L)
		x.R = r.expr(x.R)
		switch x.Op {
		case ast.OpAnd, ast.OpOr:
			// Commute: evaluation order differs, result does not
			// (three-valued logic AND/OR are symmetric).
			x.L, x.R = x.R, x.L
			r.changed = true
		case ast.OpEq:
			if _, lit := x.L.(*ast.Literal); !lit {
				if _, rlit := x.R.(*ast.Literal); rlit {
					x.L, x.R = x.R, x.L
					r.changed = true
				}
			}
		}
		return x
	case *ast.Unary:
		x.X = r.expr(x.X)
		return x
	default:
		return e
	}
}
