package middleware

import (
	"errors"
	"strings"
	"testing"

	"divsql/internal/dialect"
	"divsql/internal/fault"
	"divsql/internal/server"
	"divsql/internal/sql/ast"
)

func newServers(t *testing.T, faults []fault.Fault, names ...dialect.ServerName) []*server.Server {
	t.Helper()
	out := make([]*server.Server, 0, len(names))
	for _, n := range names {
		s, err := server.New(n, faults)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, s)
	}
	return out
}

func newDiverse(t *testing.T, faults []fault.Fault, names ...dialect.ServerName) *DiverseServer {
	t.Helper()
	cfg := DefaultConfig()
	// The legacy tests assert exact quarantine windows (quarantined until
	// the next write); the asynchronous idle-time rejoin would race those
	// assertions. It has its own acceptance test.
	cfg.IdleRejoin = false
	d, err := New(cfg, newServers(t, faults, names...)...)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func mustExec(t *testing.T, d *DiverseServer, sql string) {
	t.Helper()
	if _, _, err := d.Exec(sql); err != nil {
		t.Fatalf("exec %q: %v", sql, err)
	}
}

func TestNewRequiresReplicas(t *testing.T) {
	if _, err := New(DefaultConfig()); !errors.Is(err, ErrNoReplicas) {
		t.Errorf("got %v", err)
	}
}

func TestUnanimousPath(t *testing.T) {
	d := newDiverse(t, nil, dialect.PG, dialect.OR, dialect.MS)
	mustExec(t, d, "CREATE TABLE T (A INT)")
	mustExec(t, d, "INSERT INTO T VALUES (1)")
	res, _, err := d.Exec("SELECT A FROM T")
	if err != nil || res.Rows[0][0].I != 1 {
		t.Fatalf("select: %v %v", res, err)
	}
	m := d.Metrics()
	if m.Unanimous != 3 || m.MaskedFailures != 0 {
		t.Errorf("metrics: %+v", m)
	}
}

func TestMajorityMasksWrongResult(t *testing.T) {
	faults := []fault.Fault{{
		BugID:   "wrong",
		Server:  dialect.PG,
		Trigger: fault.Trigger{Table: "T", Flag: ast.FlagSelect},
		Effect:  fault.Effect{Kind: fault.EffectMutateResult, Mutation: fault.MutOffByOne},
	}}
	d := newDiverse(t, faults, dialect.PG, dialect.OR, dialect.MS)
	mustExec(t, d, "CREATE TABLE T (A INT)")
	mustExec(t, d, "INSERT INTO T VALUES (10)")
	res, _, err := d.Exec("SELECT A FROM T")
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].I != 10 {
		t.Errorf("client saw the wrong value %v", res.Rows[0][0])
	}
	m := d.Metrics()
	if m.MaskedFailures == 0 {
		t.Errorf("masking not recorded: %+v", m)
	}
	// The outvoted replica rejoins at the next state-changing statement
	// (resync never interleaves with in-flight reads on the shared path).
	mustExec(t, d, "INSERT INTO T VALUES (20)")
	if m := d.Metrics(); m.Resyncs == 0 {
		t.Errorf("outvoted replica not resynced: %+v", m)
	}
	// After resync the faulty replica is back in agreement for
	// non-triggering statements.
	res, _, err = d.Exec("SELECT A + 1 AS B FROM T WHERE A = 10")
	if err != nil || res.Rows[0][0].I != 11 {
		t.Errorf("after resync: %v %v", res, err)
	}
}

func TestPairDetectsWithoutMasking(t *testing.T) {
	faults := []fault.Fault{{
		BugID:   "wrong",
		Server:  dialect.PG,
		Trigger: fault.Trigger{Table: "T", Flag: ast.FlagSelect},
		Effect:  fault.Effect{Kind: fault.EffectMutateResult, Mutation: fault.MutOffByOne},
	}}
	cfg := DefaultConfig()
	cfg.Rephrase = false
	d, err := New(cfg, newServers(t, faults, dialect.PG, dialect.OR)...)
	if err != nil {
		t.Fatal(err)
	}
	mustExec(t, d, "CREATE TABLE T (A INT)")
	mustExec(t, d, "INSERT INTO T VALUES (5)")
	_, _, err = d.Exec("SELECT A FROM T")
	var div *DivergenceError
	if !errors.As(err, &div) {
		t.Fatalf("want divergence, got %v", err)
	}
	if d.Metrics().DetectedSplits != 1 {
		t.Errorf("metrics: %+v", d.Metrics())
	}
}

func TestCrashRecovery(t *testing.T) {
	faults := []fault.Fault{{
		BugID:   "crash",
		Server:  dialect.OR,
		Trigger: fault.Trigger{Table: "T", Flag: ast.FlagGroupBy},
		Effect:  fault.Effect{Kind: fault.EffectCrash},
	}}
	d := newDiverse(t, faults, dialect.PG, dialect.OR, dialect.MS)
	mustExec(t, d, "CREATE TABLE T (A INT)")
	mustExec(t, d, "INSERT INTO T VALUES (1)")
	mustExec(t, d, "INSERT INTO T VALUES (2)")
	// Crashes OR; the other two answer.
	res, _, err := d.Exec("SELECT A, COUNT(*) AS N FROM T GROUP BY A")
	if err != nil || len(res.Rows) != 2 {
		t.Fatalf("grouped select: %v %v", res, err)
	}
	if m := d.Metrics(); m.CrashesDetected != 1 {
		t.Errorf("metrics: %+v", m)
	}
	// The crashed replica is restarted and quarantined; it rejoins at the
	// start of the next state-changing statement, when the exclusive
	// statement lock guarantees nothing is in flight on any replica.
	if len(d.QuarantinedReplicas()) != 1 {
		t.Fatalf("quarantined: %v", d.QuarantinedReplicas())
	}
	mustExec(t, d, "INSERT INTO T VALUES (3)")
	if m := d.Metrics(); m.Resyncs == 0 {
		t.Errorf("metrics after rejoin write: %+v", m)
	}
	if len(d.QuarantinedReplicas()) != 0 {
		t.Errorf("quarantined: %v", d.QuarantinedReplicas())
	}
	// The restarted replica serves again, in full agreement.
	res, _, err = d.Exec("SELECT A FROM T ORDER BY A")
	if err != nil || len(res.Rows) != 3 {
		t.Fatalf("after recovery: %v %v", res, err)
	}
}

func TestErrorMajorityWins(t *testing.T) {
	// One replica silently accepts an invalid statement (Other-NSE
	// class); the majority's error is the adjudicated outcome.
	faults := []fault.Fault{{
		BugID:   "accept",
		Server:  dialect.PG,
		Trigger: fault.Trigger{Table: "T", Flag: ast.FlagInsert},
		Effect:  fault.Effect{Kind: fault.EffectSuppressError},
	}}
	d := newDiverse(t, faults, dialect.PG, dialect.OR, dialect.MS)
	mustExec(t, d, "CREATE TABLE T (A INT PRIMARY KEY)")
	mustExec(t, d, "INSERT INTO T VALUES (1)")
	// Duplicate key: OR and MS error (correctly); PG wrongly accepts.
	_, _, err := d.Exec("INSERT INTO T VALUES (1)")
	if err == nil || !strings.Contains(err.Error(), "constraint") {
		t.Fatalf("majority error must win: %v", err)
	}
	if d.Metrics().MaskedFailures == 0 {
		t.Errorf("acceptance failure not masked: %+v", d.Metrics())
	}
}

func TestLegitimateErrorsPassThrough(t *testing.T) {
	d := newDiverse(t, nil, dialect.PG, dialect.OR, dialect.MS)
	mustExec(t, d, "CREATE TABLE T (A INT)")
	if _, _, err := d.Exec("SELECT NOPE FROM T"); err == nil {
		t.Error("unknown column must error")
	}
	if _, _, err := d.Exec("INSERT INTO MISSING VALUES (1)"); err == nil {
		t.Error("missing table must error")
	}
	m := d.Metrics()
	if m.MaskedFailures != 0 || m.DetectedSplits != 0 {
		t.Errorf("legitimate errors misclassified: %+v", m)
	}
}

// Resync no longer waits for a transaction boundary: a replica
// quarantined while the donor sits mid-transaction rejoins on the very
// next state-changing statement, fed a committed snapshot plus the open
// transaction's redo journal.
func TestResyncCompletesInsideOpenTransaction(t *testing.T) {
	faults := []fault.Fault{{
		BugID:   "err",
		Server:  dialect.MS,
		Trigger: fault.Trigger{Table: "T", Flag: ast.FlagUpdate},
		Effect:  fault.Effect{Kind: fault.EffectError, Message: "spurious"},
	}}
	d := newDiverse(t, faults, dialect.PG, dialect.OR, dialect.MS)
	mustExec(t, d, "CREATE TABLE T (A INT)")
	mustExec(t, d, "INSERT INTO T VALUES (1)")
	mustExec(t, d, "BEGIN TRANSACTION")
	// MS errors inside the transaction and is quarantined.
	mustExec(t, d, "UPDATE T SET A = 2")
	if len(d.QuarantinedReplicas()) != 1 {
		t.Fatalf("quarantined: %v", d.QuarantinedReplicas())
	}
	// The next write rejoins MS while the transaction is STILL OPEN on
	// the donors: committed snapshot + journal redo, no boundary wait.
	mustExec(t, d, "INSERT INTO T VALUES (5)")
	m := d.Metrics()
	if m.Resyncs == 0 {
		t.Fatalf("no resync inside open transaction: %+v", m)
	}
	if m.JournalReplays == 0 {
		t.Errorf("open-transaction redo not shipped: %+v", m)
	}
	mustExec(t, d, "ROLLBACK")
	// Rolled back everywhere: all replicas agree on A = 1 and the insert
	// of 5 is gone.
	res, _, err := d.Exec("SELECT A FROM T")
	if err != nil || len(res.Rows) != 1 || res.Rows[0][0].I != 1 {
		t.Fatalf("after rollback: %v %v", res, err)
	}
	if len(d.QuarantinedReplicas()) != 0 {
		t.Errorf("replica not reinstated: %v", d.QuarantinedReplicas())
	}
}

func TestRephraseBetween(t *testing.T) {
	out, changed := Rephrase("SELECT A FROM T WHERE A BETWEEN 1 AND 5")
	if !changed || !strings.Contains(out, ">= 1") || !strings.Contains(out, "<= 5") {
		t.Errorf("rephrase: %q", out)
	}
}

func TestRephraseInList(t *testing.T) {
	out, changed := Rephrase("SELECT A FROM T WHERE A IN (1, 2)")
	if !changed || !strings.Contains(out, "OR") {
		t.Errorf("rephrase: %q", out)
	}
}

func TestRephrasePreservesSemantics(t *testing.T) {
	srv, err := server.New(dialect.PG, nil)
	if err != nil {
		t.Fatal(err)
	}
	setup := []string{
		"CREATE TABLE T (A INT, B VARCHAR(5))",
		"INSERT INTO T VALUES (1, 'x'), (2, 'y'), (3, NULL), (NULL, 'z')",
	}
	for _, s := range setup {
		if _, _, err := srv.Exec(s); err != nil {
			t.Fatal(err)
		}
	}
	queries := []string{
		"SELECT A FROM T WHERE A BETWEEN 1 AND 2 ORDER BY A",
		"SELECT A FROM T WHERE A IN (1, 3) ORDER BY A",
		"SELECT A FROM T WHERE A = 2 AND B = 'y'",
		"SELECT A FROM T WHERE A = 1 OR A = 3 ORDER BY A",
		"SELECT A FROM T WHERE A NOT IN (1, 2) ORDER BY A",
		"SELECT A FROM T WHERE NOT (A BETWEEN 2 AND 3)",
	}
	for _, q := range queries {
		orig, _, err := srv.Exec(q)
		if err != nil {
			t.Fatalf("%s: %v", q, err)
		}
		rq, changed := Rephrase(q)
		if !changed {
			t.Errorf("no rewriting for %q", q)
			continue
		}
		re, _, err := srv.Exec(rq)
		if err != nil {
			t.Fatalf("rephrased %q: %v", rq, err)
		}
		if len(orig.Rows) != len(re.Rows) {
			t.Errorf("%q vs %q: %d rows vs %d", q, rq, len(orig.Rows), len(re.Rows))
		}
	}
}

func TestAllReplicasDown(t *testing.T) {
	faults := []fault.Fault{
		{BugID: "c1", Server: dialect.PG, Trigger: fault.Trigger{Table: "T", Flag: ast.FlagSelect},
			Effect: fault.Effect{Kind: fault.EffectCrash}},
		{BugID: "c2", Server: dialect.OR, Trigger: fault.Trigger{Table: "T", Flag: ast.FlagSelect},
			Effect: fault.Effect{Kind: fault.EffectCrash}},
	}
	cfg := DefaultConfig()
	cfg.AutoResync = false
	d, err := New(cfg, newServers(t, faults, dialect.PG, dialect.OR)...)
	if err != nil {
		t.Fatal(err)
	}
	mustExec(t, d, "CREATE TABLE T (A INT)")
	if _, _, err := d.Exec("SELECT A FROM T"); err == nil {
		t.Error("want failure when every replica crashes")
	}
}

func TestReplicaNames(t *testing.T) {
	d := newDiverse(t, nil, dialect.IB, dialect.MS)
	names := d.ReplicaNames()
	if len(names) != 2 || names[0] != "IB" || names[1] != "MS" {
		t.Errorf("names: %v", names)
	}
}

func TestReadOnePolicySkipsComparison(t *testing.T) {
	faults := []fault.Fault{{
		BugID:   "wrong",
		Server:  dialect.PG,
		Trigger: fault.Trigger{Table: "T", Flag: ast.FlagSelect},
		Effect:  fault.Effect{Kind: fault.EffectMutateResult, Mutation: fault.MutOffByOne},
	}}
	cfg := DefaultConfig()
	cfg.Reads = ReadOne
	d, err := New(cfg, newServers(t, faults, dialect.PG, dialect.OR)...)
	if err != nil {
		t.Fatal(err)
	}
	mustExec(t, d, "CREATE TABLE T (A INT)")
	mustExec(t, d, "INSERT INTO T VALUES (5)")
	// Reads rotate across replicas without comparison: over several
	// queries both the correct (OR) and the wrong (PG) value surface —
	// the dependability cost of the performance end of the dial.
	sawWrong, sawRight := false, false
	for i := 0; i < 6; i++ {
		res, _, err := d.Exec("SELECT A FROM T")
		if err != nil {
			t.Fatal(err)
		}
		switch res.Rows[0][0].I {
		case 5:
			sawRight = true
		case 6:
			sawWrong = true
		}
	}
	if !sawRight || !sawWrong {
		t.Errorf("read-one rotation: right=%v wrong=%v", sawRight, sawWrong)
	}
	if d.Metrics().DetectedSplits != 0 {
		t.Error("read-one must not compare")
	}
}

func TestReadOneFailsOverOnCrash(t *testing.T) {
	faults := []fault.Fault{{
		BugID:   "crash",
		Server:  dialect.PG,
		Trigger: fault.Trigger{Table: "T", Flag: ast.FlagSelect},
		Effect:  fault.Effect{Kind: fault.EffectCrash},
	}}
	cfg := DefaultConfig()
	cfg.Reads = ReadOne
	d, err := New(cfg, newServers(t, faults, dialect.PG, dialect.OR)...)
	if err != nil {
		t.Fatal(err)
	}
	mustExec(t, d, "CREATE TABLE T (A INT)")
	mustExec(t, d, "INSERT INTO T VALUES (1)")
	for i := 0; i < 4; i++ {
		res, _, err := d.Exec("SELECT A FROM T")
		if err != nil || res.Rows[0][0].I != 1 {
			t.Fatalf("read %d: %v %v", i, res, err)
		}
	}
	if d.Metrics().CrashesDetected == 0 {
		t.Error("crash failover not recorded")
	}
}

func TestReadOneBroadcastsInsideTransactions(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Reads = ReadOne
	d, err := New(cfg, newServers(t, nil, dialect.PG, dialect.OR)...)
	if err != nil {
		t.Fatal(err)
	}
	mustExec(t, d, "CREATE TABLE T (A INT)")
	mustExec(t, d, "BEGIN TRANSACTION")
	mustExec(t, d, "INSERT INTO T VALUES (9)")
	// Inside the transaction the query must see the uncommitted write on
	// EVERY replica, so it is broadcast rather than read-one.
	res, _, err := d.Exec("SELECT A FROM T")
	if err != nil || len(res.Rows) != 1 || res.Rows[0][0].I != 9 {
		t.Fatalf("txn read: %v %v", res, err)
	}
	mustExec(t, d, "COMMIT")
}
