package middleware

import (
	"fmt"
	"strings"
	"sync"
	"testing"

	"divsql/internal/dialect"
	"divsql/internal/obs"
)

// TestMetricsConcurrentWithExec hammers statement execution from several
// sessions while concurrently reading Metrics() and scraping the full
// collector set. Run under -race (CI does) this proves the snapshot
// contract documented on Metrics: every counter write and the snapshot
// copy go through d.mu, and the collectors only use locked snapshots.
func TestMetricsConcurrentWithExec(t *testing.T) {
	d := newDiverse(t, nil, dialect.PG, dialect.OR, dialect.MS)
	mustExec(t, d, "CREATE TABLE RACE_T (A INT PRIMARY KEY, B INT)")

	reg := obs.NewRegistry()
	reg.Register(d.MetricsCollectors()...)

	const (
		writers = 4
		readers = 4
		perGoro = 50
	)
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			cs := d.NewSession()
			defer cs.Close()
			for i := 0; i < perGoro; i++ {
				k := w*perGoro + i
				if _, _, err := cs.Exec(fmt.Sprintf("INSERT INTO RACE_T VALUES (%d, %d)", k, k)); err != nil {
					t.Errorf("insert: %v", err)
					return
				}
				if _, _, err := cs.Exec(fmt.Sprintf("SELECT B FROM RACE_T WHERE A = %d", k)); err != nil {
					t.Errorf("select: %v", err)
					return
				}
			}
		}(w)
	}
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perGoro; i++ {
				m := d.Metrics()
				if m.Statements < 0 {
					t.Error("negative statement count")
					return
				}
				if doc := reg.Render(); !strings.Contains(doc, "divsql_middleware_statements_total") {
					t.Error("scrape missing middleware family")
					return
				}
			}
		}()
	}
	wg.Wait()

	m := d.Metrics()
	// CREATE + writers*(INSERT+SELECT); fault-free, so all unanimous.
	want := int64(1 + writers*perGoro*2)
	if m.Statements != want || m.Unanimous != want {
		t.Fatalf("statements=%d unanimous=%d, want %d", m.Statements, m.Unanimous, want)
	}
}

// TestMetricsCollectorFamilies checks the middleware scrape covers the
// adjudication counters, per-replica health and the resync histogram,
// and stays exposition-valid with replica labels present.
func TestMetricsCollectorFamilies(t *testing.T) {
	d := newDiverse(t, nil, dialect.PG, dialect.OR)
	mustExec(t, d, "CREATE TABLE MT (A INT)")
	mustExec(t, d, "INSERT INTO MT VALUES (1)")

	reg := obs.NewRegistry()
	reg.Register(d.MetricsCollectors()...)
	doc := reg.Render()
	for _, want := range []string{
		"divsql_middleware_statements_total 2",
		"divsql_middleware_unanimous_total 2",
		"divsql_middleware_resync_duration_seconds_bucket",
		`divsql_middleware_replica_quarantined{replica="PG"} 0`,
		`divsql_engine_table_rows{replica="OR",table="MT"} 1`,
		"divsql_engine_plan_cache_hits_total",
		`divsql_server_up{replica="PG"} 1`,
	} {
		if !strings.Contains(doc, want) {
			t.Errorf("scrape missing %q\n%s", want, doc)
		}
	}
}
