package divsql

import (
	"divsql/internal/reliability"
	"divsql/internal/study"
)

// StudyReport packages the reproduced paper artefacts.
type StudyReport struct {
	// Table1 .. Table4 are the paper's tables rendered as text.
	Table1, Table2, Table3, Table4 string
	// Headline is the summary-statistics block (Section 7).
	Headline string
	// Gains is the Section 6 reliability-gain table.
	Gains string

	// IncorrectResultPct and CrashPct are the headline fractions of
	// own-server failures (the paper: 64.5% and 17.1%).
	IncorrectResultPct float64
	CrashPct           float64
	// MaxCoincident is the largest number of servers any bug failed
	// (the paper: 2).
	MaxCoincident int
	// CoincidentBugs counts bugs failing two servers (the paper: 12).
	CoincidentBugs int
	// NonDetectable counts coincident failures with identical outputs
	// (the paper: 4).
	NonDetectable int

	result *study.Result
}

// RunStudy executes the full fault-diversity study — all 181 bug
// scripts, translated and executed on all four simulated servers — and
// returns the reproduced tables.
func RunStudy() (*StudyReport, error) {
	return runStudy(false)
}

// RunStudyStress is RunStudy in the stressful environment where
// Heisenbug-class faults can manifest.
func RunStudyStress() (*StudyReport, error) {
	return runStudy(true)
}

func runStudy(stress bool) (*StudyReport, error) {
	s := study.New()
	s.Stress = stress
	res, err := s.Run()
	if err != nil {
		return nil, err
	}
	h := res.BuildHeadline()
	return &StudyReport{
		Table1:             res.BuildTable1().Render(),
		Table2:             res.BuildTable2().Render(),
		Table3:             res.BuildTable3().Render(),
		Table4:             res.BuildTable4().Render(),
		Headline:           h.Render(),
		Gains:              reliability.FromStudy(res).Render(),
		IncorrectResultPct: h.IncorrectPct,
		CrashPct:           h.CrashPct,
		MaxCoincident:      h.MaxCoincident,
		CoincidentBugs:     h.CoincidentBugs,
		NonDetectable:      h.NonDetectable,
		result:             res,
	}, nil
}
