# bash -o pipefail so `go test | tee` failures fail the target (a
# panicking benchmark must not publish a silently partial artifact).
SHELL := /bin/bash -o pipefail

GO  ?= go
# Commit recorded in the benchmark artifact; CI passes the full SHA.
SHA ?= $(shell git rev-parse --short HEAD)

.PHONY: build test race smoke bench staticcheck

build:
	$(GO) build ./...

test: build
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Fault-free differential smoke: the generated common dialect subset
# must agree with the oracle on every server; any finding exits 1.
smoke:
	$(GO) run ./cmd/divfuzz -seed 1 -n 2000 -streams 4 -faults=false
	$(GO) run ./cmd/divfuzz -seed 5 -n 2000 -streams 1 -adaptive -maxrows 64 -faults=false
	$(GO) run ./cmd/divfuzz -seed 7 -n 2000 -streams 2 -params -faults=false
	$(GO) run ./cmd/divfuzz -seed 9 -n 2000 -streams 2 -planvariants -faults=false
	$(GO) run ./cmd/divfuzz -seed 11 -n 2000 -streams 2 -params -planvariants -faults=false
	$(GO) run ./cmd/divfuzz -seed 13 -n 2000 -streams 4 -isolation -faults=false
	$(GO) run ./cmd/divfuzz -seed 17 -n 2000 -streams 2 -tlp -norec -cert -faults=false
	$(GO) run ./cmd/divfuzz -seed 19 -n 2000 -streams 2 -tlp -norec -cert -params -planvariants -isolation -faults=false
	$(GO) run ./cmd/divfuzz -seed 23 -n 2000 -streams 4 -shards 2

# One-iteration benchmark sweep converted to the machine-readable
# artifact BENCH_<sha>.json at the repo root, so the performance
# trajectory accumulates across commits. -benchtime=1x keeps it cheap;
# run `go test -bench . -benchmem ./...` for statistically tight
# numbers.
bench:
	$(GO) test -bench . -benchtime=1x -run '^$$' ./... | tee bench.txt
	$(GO) run ./cmd/benchjson -sha "$(SHA)" < bench.txt > "BENCH_$(SHA).json"
	rm -f bench.txt

staticcheck:
	$(GO) run honnef.co/go/tools/cmd/staticcheck@2025.1.1 ./...

# Warn-only perf regression check: diff a fresh artifact against the
# newest committed BENCH_*.json (by commit date). Usage:
#   make bench bench-delta
.PHONY: bench-delta
bench-delta:
	@new="BENCH_$(SHA).json"; prev=""; newest=0; \
	for f in $$(git ls-files 'BENCH_*.json'); do \
		[ "$$f" = "$$new" ] && continue; \
		ts=$$(git log -1 --format=%ct -- "$$f"); \
		if [ "$$ts" -gt "$$newest" ]; then newest=$$ts; prev=$$f; fi; \
	done; \
	if [ -z "$$prev" ]; then echo "bench-delta: no committed baseline"; exit 0; fi; \
	$(GO) run ./cmd/benchdelta -old "$$prev" -new "$$new" $(BENCHDELTA_FLAGS)
