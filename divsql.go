// Package divsql is a reproduction study and library for "Fault
// Diversity among Off-The-Shelf SQL Database Servers" (Gashi, Popov &
// Strigini, DSN 2004).
//
// It provides:
//
//   - four simulated off-the-shelf SQL servers (Interbase 6, PostgreSQL
//     7.0, Oracle 8.0.5 and MS SQL Server 7 — abbreviated IB, PG, OR,
//     MS) built on a shared SQL-92 engine, diversified by per-server
//     dialects and per-server fault/quirk sets calibrated against the
//     paper's published bug data;
//
//   - the paper's study harness: run the 181-bug corpus on every server
//     and regenerate Tables 1-4 and the headline statistics;
//
//   - the fault-tolerant middleware the paper motivates: a diverse
//     replicated SQL server with result comparison, failure masking,
//     quarantine and state resynchronization, plus the crash-only
//     non-diverse baseline it is compared against;
//
//   - a TPC-C-like workload for statistical testing of any
//     configuration;
//
//   - a differential fuzzing rig (internal/qgen + internal/difftest,
//     cmd/divfuzz) that scales the paper's question to open-ended
//     generated workloads: schema-aware statement streams adjudicated
//     across all four servers and a pristine oracle, with
//     coverage-guided budget allocation and bounded table cardinality
//     for deep runs.
//
// The execution contract is prepare/bind/execute end to end: Exec(sql)
// is one-shot prepare-and-execute, and Prepare(sql) plans a statement
// (with ? or $n placeholders) once for repeated execution with typed
// arguments, bound server-side under each simulated server's own
// coercion rules. Results carry both the typed cells (Result.Values)
// and the string rendering the comparator works over (Result.Rows).
//
// Quickstart:
//
//	db, _ := divsql.OpenDiverse(divsql.PG, divsql.OR, divsql.MS)
//	defer db.Close()
//	db.Exec(`CREATE TABLE T (A INT)`)
//	ins, _ := db.Prepare(`INSERT INTO T VALUES (?)`)
//	ins.Exec(divsql.Int(1))
//	res, _ := db.Exec(`SELECT A FROM T`)
//	fmt.Println(res.Rows)
package divsql

import (
	"errors"
	"fmt"
	"time"

	"divsql/internal/core"
	"divsql/internal/corpus"
	"divsql/internal/dialect"
	"divsql/internal/engine"
	"divsql/internal/fault"
	"divsql/internal/middleware"
	"divsql/internal/obs"
	"divsql/internal/replication"
	"divsql/internal/server"
	"divsql/internal/shard"
	"divsql/internal/sql/types"
)

// ServerName identifies a simulated server product.
type ServerName string

// The four simulated off-the-shelf servers.
const (
	IB ServerName = "IB" // Interbase 6.0 (simulated)
	PG ServerName = "PG" // PostgreSQL 7.0.0 (simulated)
	OR ServerName = "OR" // Oracle 8.0.5 (simulated)
	MS ServerName = "MS" // MS SQL Server 7 (simulated)
)

// AllServers lists the four simulated servers.
func AllServers() []ServerName { return []ServerName{IB, PG, OR, MS} }

// Row is one result row, rendered as strings ("NULL" for SQL NULL).
type Row []string

// Value is one typed SQL scalar: the argument type of prepared-statement
// execution and the cell type of Result.Values. Construct arguments with
// Int, Float, Str, Bool and Null.
type Value = types.Value

// Typed argument constructors for Stmt.Exec.
func Int(i int64) Value     { return types.NewInt(i) }
func Float(f float64) Value { return types.NewFloat(f) }
func Str(s string) Value    { return types.NewString(s) }
func Bool(b bool) Value     { return types.NewBool(b) }
func Null() Value           { return types.Null() }

// Result is the outcome of one statement.
type Result struct {
	// Columns are the result column names (empty for non-queries).
	Columns []string
	// Rows are the data rows rendered as strings — the representation
	// the comparator and fingerprinting work over ("NULL" for SQL NULL).
	Rows []Row
	// Values are the same data rows as typed values (queries only;
	// index-aligned with Rows).
	Values [][]Value
	// Affected is the row count of INSERT/UPDATE/DELETE.
	Affected int64
	// Latency is the simulated execution time.
	Latency time.Duration
}

// DB is a SQL endpoint: a single simulated server, a non-diverse
// replication group, or a diverse fault-tolerant server.
type DB interface {
	// Exec executes one SQL statement on the endpoint's default session
	// (a one-shot prepare-and-execute).
	Exec(sql string) (*Result, error)
	// Prepare plans one statement on the endpoint's default session for
	// repeated execution with typed arguments (? or $n placeholders).
	Prepare(sql string) (Stmt, error)
	// Session opens a client session: an independent transaction scope.
	// Sessions of one endpoint execute concurrently (queries in
	// parallel, writes serialized); each session is used by one client
	// at a time, like a connection.
	Session() (Session, error)
	// Close releases the endpoint.
	Close() error
}

// Session is one client session of a DB: its own transaction scope.
// BEGIN/COMMIT/ROLLBACK on one session never affect another.
type Session interface {
	// Exec executes one SQL statement in this session.
	Exec(sql string) (*Result, error)
	// Prepare plans one statement in this session for repeated execution
	// with typed arguments.
	Prepare(sql string) (Stmt, error)
	// Close rolls back any open transaction and releases the session.
	Close() error
}

// Stmt is a prepared statement: parsed, dialect-checked and planned
// once, executed any number of times with typed arguments bound
// server-side (per-dialect coercion rules and all — see
// engine.BindRules). On a diverse endpoint every execution is broadcast
// and adjudicated across the replica set like any other statement.
type Stmt interface {
	// Exec executes the statement with the given arguments.
	Exec(args ...Value) (*Result, error)
	// NumParams reports how many arguments Exec expects.
	NumParams() int
	// Close releases the statement.
	Close() error
}

// coreSession adapts a core.Session to the public Session interface.
type coreSession struct{ s core.Session }

func (cs *coreSession) Exec(sql string) (*Result, error) {
	res, lat, err := cs.s.Exec(sql)
	if err != nil {
		return nil, err
	}
	return convertResult(res, lat), nil
}

func (cs *coreSession) Prepare(sql string) (Stmt, error) {
	pe, ok := cs.s.(core.PreparedExecutor)
	if !ok {
		return nil, errors.New("divsql: endpoint does not support prepared statements")
	}
	st, err := pe.Prepare(sql)
	if err != nil {
		return nil, err
	}
	return &coreStmt{st: st}, nil
}

func (cs *coreSession) Close() error { return cs.s.Close() }

// coreStmt adapts a core.Statement to the public Stmt interface.
type coreStmt struct{ st core.Statement }

func (s *coreStmt) Exec(args ...Value) (*Result, error) {
	res, lat, err := s.st.Exec(args...)
	if err != nil {
		return nil, err
	}
	return convertResult(res, lat), nil
}

func (s *coreStmt) NumParams() int { return s.st.NumParams() }
func (s *coreStmt) Close() error   { return s.st.Close() }

// Option configures Open* constructors.
type Option func(*options)

type options struct {
	withFaults   bool
	rephrase     bool
	autoResync   bool
	stress       bool
	perfThresh   time.Duration
	autoRestart  bool
	compareNames bool
}

func defaultOptions() options {
	return options{
		withFaults:   true,
		rephrase:     true,
		autoResync:   true,
		perfThresh:   time.Second,
		autoRestart:  true,
		compareNames: true,
	}
}

// WithFaults controls whether the calibrated fault corpus is injected
// into the simulated servers (default true). Disable it to get
// idealized fault-free servers.
func WithFaults(on bool) Option { return func(o *options) { o.withFaults = on } }

// WithRephrasing controls the query-rephrasing retry of the diverse
// middleware (default true).
func WithRephrasing(on bool) Option { return func(o *options) { o.rephrase = on } }

// WithAutoResync controls automatic restart + state transfer for
// crashed or outvoted replicas (default true).
func WithAutoResync(on bool) Option { return func(o *options) { o.autoResync = on } }

// WithStress enables the stressful environment in which Heisenbug-class
// faults can manifest.
func WithStress(on bool) Option { return func(o *options) { o.stress = on } }

// WithAutoRestart controls primary auto-restart in the non-diverse
// replication baseline (default true).
func WithAutoRestart(on bool) Option { return func(o *options) { o.autoRestart = on } }

// newServer builds one simulated server per the options.
func newServer(name ServerName, o options) (*server.Server, error) {
	var faults []fault.Fault
	if o.withFaults {
		faults = corpus.AllFaults()
	}
	srv, err := server.New(dialect.ServerName(name), faults)
	if err != nil {
		return nil, fmt.Errorf("open %s: %w", name, err)
	}
	srv.SetStress(o.stress)
	return srv, nil
}

// ---------------------------------------------------------------------------
// Single server

type singleDB struct{ srv *server.Server }

// Open returns a single simulated server.
func Open(name ServerName, opts ...Option) (DB, error) {
	o := defaultOptions()
	for _, opt := range opts {
		opt(&o)
	}
	srv, err := newServer(name, o)
	if err != nil {
		return nil, err
	}
	return &singleDB{srv: srv}, nil
}

func (s *singleDB) Exec(sql string) (*Result, error) {
	res, lat, err := s.srv.Exec(sql)
	if err != nil {
		return nil, err
	}
	return convertResult(res, lat), nil
}

func (s *singleDB) Prepare(sql string) (Stmt, error) {
	st, err := s.srv.Prepare(sql)
	if err != nil {
		return nil, err
	}
	return &coreStmt{st: st}, nil
}

func (s *singleDB) Session() (Session, error) {
	return &coreSession{s: s.srv.OpenSession()}, nil
}

func (s *singleDB) Close() error { return nil }

// ---------------------------------------------------------------------------
// Diverse middleware

type diverseDB struct{ d *middleware.DiverseServer }

// OpenDiverse returns a fault-tolerant diverse server over the named
// replicas (two replicas detect failures; three or more also mask them
// by majority voting).
func OpenDiverse(names ...ServerName) (DB, error) {
	return OpenDiverseWith(nil, names...)
}

// OpenDiverseWith is OpenDiverse with options.
func OpenDiverseWith(opts []Option, names ...ServerName) (DB, error) {
	if len(names) == 0 {
		return nil, errors.New("divsql: OpenDiverse needs at least one server name")
	}
	o := defaultOptions()
	for _, opt := range opts {
		opt(&o)
	}
	servers := make([]*server.Server, 0, len(names))
	for _, n := range names {
		srv, err := newServer(n, o)
		if err != nil {
			return nil, err
		}
		servers = append(servers, srv)
	}
	cfg := middleware.DefaultConfig()
	cfg.Rephrase = o.rephrase
	cfg.AutoResync = o.autoResync
	cfg.PerfThreshold = o.perfThresh
	d, err := middleware.New(cfg, servers...)
	if err != nil {
		return nil, err
	}
	return &diverseDB{d: d}, nil
}

func (d *diverseDB) Exec(sql string) (*Result, error) {
	res, lat, err := d.d.Exec(sql)
	if err != nil {
		return nil, err
	}
	return convertResult(res, lat), nil
}

func (d *diverseDB) Prepare(sql string) (Stmt, error) {
	st, err := d.d.Prepare(sql)
	if err != nil {
		return nil, err
	}
	return &coreStmt{st: st}, nil
}

func (d *diverseDB) Session() (Session, error) {
	return &coreSession{s: d.d.OpenSession()}, nil
}

func (d *diverseDB) Close() error { return nil }

// DiverseMetrics is the middleware's event counters.
type DiverseMetrics = middleware.Metrics

// Metrics returns the diverse middleware's counters; ok is false when
// db is not a diverse server.
func Metrics(db DB) (DiverseMetrics, bool) {
	d, ok := db.(*diverseDB)
	if !ok {
		return DiverseMetrics{}, false
	}
	return d.d.Metrics(), true
}

// ---------------------------------------------------------------------------
// Sharded deployment

type shardedDB struct {
	r    *shard.Router
	sets []*middleware.DiverseServer
}

// ShardedConfig configures OpenSharded.
type ShardedConfig struct {
	// Shards is the number of independent diverse replica sets.
	Shards int
	// BandColumns maps TABLE name (upper case) to its partitioning
	// column; non-empty selects PK-band partitioning (every table on
	// every shard, rows split by band value; tables absent from the map
	// replicate everywhere). Empty selects namespace partitioning
	// (every table wholly on the shard owning its name prefix).
	BandColumns map[string]string
	// WallClock makes each replica set's adjudication loop spend the
	// adjudicated latency in real time (see middleware.Config.WallClock)
	// — the regime in which sharding measurably multiplies throughput.
	WallClock bool
}

// OpenSharded returns a horizontally scaled deployment: cfg.Shards
// independent diverse replica sets, each over the named replicas and
// with its own adjudication loop, quarantine policy and resync
// machinery, behind a shard router. See internal/shard for the routing
// and ordering rules.
func OpenSharded(cfg ShardedConfig, names ...ServerName) (DB, error) {
	return OpenShardedWith(cfg, nil, names...)
}

// OpenShardedWith is OpenSharded with replica-set options.
func OpenShardedWith(cfg ShardedConfig, opts []Option, names ...ServerName) (DB, error) {
	if cfg.Shards <= 0 {
		return nil, errors.New("divsql: OpenSharded needs at least one shard")
	}
	if len(names) == 0 {
		return nil, errors.New("divsql: OpenSharded needs at least one server name")
	}
	o := defaultOptions()
	for _, opt := range opts {
		opt(&o)
	}
	mcfg := middleware.DefaultConfig()
	mcfg.Rephrase = o.rephrase
	mcfg.AutoResync = o.autoResync
	mcfg.PerfThreshold = o.perfThresh
	mcfg.WallClock = cfg.WallClock
	sets := make([]*middleware.DiverseServer, 0, cfg.Shards)
	backends := make([]shard.Backend, 0, cfg.Shards)
	for i := 0; i < cfg.Shards; i++ {
		servers := make([]*server.Server, 0, len(names))
		for _, n := range names {
			srv, err := newServer(n, o)
			if err != nil {
				return nil, err
			}
			servers = append(servers, srv)
		}
		d, err := middleware.New(mcfg, servers...)
		if err != nil {
			return nil, err
		}
		sets = append(sets, d)
		backends = append(backends, d)
	}
	r, err := shard.New(shard.Config{BandColumns: cfg.BandColumns}, backends...)
	if err != nil {
		return nil, err
	}
	return &shardedDB{r: r, sets: sets}, nil
}

func (s *shardedDB) Exec(sql string) (*Result, error) {
	res, lat, err := s.r.Exec(sql)
	if err != nil {
		return nil, err
	}
	return convertResult(res, lat), nil
}

func (s *shardedDB) Prepare(sql string) (Stmt, error) {
	st, err := s.r.Prepare(sql)
	if err != nil {
		return nil, err
	}
	return &coreStmt{st: st}, nil
}

func (s *shardedDB) Session() (Session, error) {
	return &coreSession{s: s.r.OpenSession()}, nil
}

func (s *shardedDB) Close() error { return nil }

// ShardsDescription returns the per-shard replica and quarantine state
// of a sharded DB (the text behind divsql-cli's \shards); ok is false
// when db is not sharded.
func ShardsDescription(db DB) (string, bool) {
	s, ok := db.(*shardedDB)
	if !ok {
		return "", false
	}
	return s.r.DescribeText(), true
}

// ---------------------------------------------------------------------------
// Non-diverse replication baseline

type replicatedDB struct{ g *replication.Group }

// OpenReplicated returns the paper's baseline: n identical replicas of
// one product under primary/backup replication with the fail-stop
// assumption (only crashes are detected; results are never compared).
func OpenReplicated(name ServerName, n int, opts ...Option) (DB, error) {
	if n <= 0 {
		return nil, errors.New("divsql: OpenReplicated needs n >= 1")
	}
	o := defaultOptions()
	for _, opt := range opts {
		opt(&o)
	}
	servers := make([]*server.Server, 0, n)
	for i := 0; i < n; i++ {
		srv, err := newServer(name, o)
		if err != nil {
			return nil, err
		}
		servers = append(servers, srv)
	}
	g, err := replication.NewGroup(o.autoRestart, servers...)
	if err != nil {
		return nil, err
	}
	return &replicatedDB{g: g}, nil
}

func (r *replicatedDB) Exec(sql string) (*Result, error) {
	res, lat, err := r.g.Exec(sql)
	if err != nil {
		return nil, err
	}
	return convertResult(res, lat), nil
}

func (r *replicatedDB) Prepare(sql string) (Stmt, error) {
	st, err := r.g.Prepare(sql)
	if err != nil {
		return nil, err
	}
	return &coreStmt{st: st}, nil
}

func (r *replicatedDB) Session() (Session, error) {
	return &coreSession{s: r.g.OpenSession()}, nil
}

func (r *replicatedDB) Close() error { return nil }

// ---------------------------------------------------------------------------
// helpers

func convertResult(res *engine.Result, lat time.Duration) *Result {
	out := &Result{Latency: lat}
	if res == nil {
		return out
	}
	out.Affected = res.Affected
	if res.Kind == engine.ResultRows {
		out.Columns = append([]string(nil), res.Columns...)
		out.Rows = make([]Row, len(res.Rows))
		out.Values = make([][]Value, len(res.Rows))
		for i, r := range res.Rows {
			row := make(Row, len(r))
			out.Values[i] = append([]Value(nil), r...)
			for j, v := range r {
				row[j] = v.String()
			}
			out.Rows[i] = row
		}
	}
	return out
}

// Executor exposes the internal executor of a DB for advanced uses
// (driving the TPC-C workload, serving over the wire protocol). All DBs
// returned by this package implement it.
func Executor(db DB) (core.Executor, bool) {
	switch x := db.(type) {
	case *singleDB:
		return x.srv, true
	case *diverseDB:
		return x.d, true
	case *shardedDB:
		return x.r, true
	case *replicatedDB:
		return x.g, true
	default:
		return nil, false
	}
}

// Collectors returns the DB's metric collectors for an obs.Registry —
// the middleware adjudication counters and per-replica engine families
// of a diverse server, the replication counters of a group, or the
// single server's own families. divsqld registers these behind its
// -metrics HTTP endpoint and the wire METRICS frame.
func Collectors(db DB) []obs.Collector {
	switch x := db.(type) {
	case *singleDB:
		return []obs.Collector{x.srv.MetricsCollector()}
	case *diverseDB:
		return x.d.MetricsCollectors()
	case *shardedDB:
		return x.r.MetricsCollectors()
	case *replicatedDB:
		return x.g.MetricsCollectors()
	default:
		return nil
	}
}
