// Package sqldriver adapts the divsql endpoints to Go's standard
// database/sql interface, so the simulated servers and the diverse
// middleware can be used by any code written against database/sql — the
// natural integration point for a replication middleware in the Go
// ecosystem.
//
// Data source names select the configuration:
//
//	single:PG                 one simulated server
//	diverse:PG,OR,MS          diverse fault-tolerant server
//	replicated:PG,3           non-diverse primary/backup group
//	wire:127.0.0.1:5433       attach to a running divsqld over TCP
//	wiremux:127.0.0.1:5433    same, multiplexing the pool's connections
//	                          over one shared TCP connection
//
// Register-and-open:
//
//	db, err := sql.Open("divsql", "diverse:PG,OR,MS")
//
// Endpoints are shared per DSN for the lifetime of the process and each
// database/sql connection maps to one session of the endpoint — so Go's
// connection pool actually pools: every pooled connection sees the same
// data, transactions are scoped to their connection, and concurrent
// connections execute in parallel. Closing a connection closes only its
// session (the endpoint and its data survive, as for a networked DBMS).
// Append a '#label' fragment to a DSN to force a distinct endpoint
// instance ("single:PG#test2" is a different database than "single:PG").
package sqldriver

import (
	"context"
	"database/sql"
	"database/sql/driver"
	"errors"
	"fmt"
	"io"
	"strconv"
	"strings"
	"sync"
	"time"

	"divsql"
	"divsql/internal/core"
	"divsql/internal/engine"
	"divsql/internal/sql/types"
)

// DriverName is the name registered with database/sql.
const DriverName = "divsql"

var registerOnce sync.Once

// Register installs the driver under DriverName. It is safe to call more
// than once.
func Register() {
	registerOnce.Do(func() {
		sql.Register(DriverName, &Driver{})
	})
}

// Driver implements driver.Driver.
type Driver struct{}

var _ driver.Driver = (*Driver)(nil)

// endpoints caches one endpoint per DSN so that every connection of a
// database/sql pool attaches to the same database.
var (
	endpointsMu sync.Mutex
	endpoints   = map[string]core.SessionExecutor{}
)

// Open resolves the DSN to its (shared) endpoint and opens one session
// on it: the connection. "wire:" DSNs skip the endpoint cache — each
// connection dials the remote divsqld, which owns the shared state.
func (d *Driver) Open(dsn string) (driver.Conn, error) {
	if addr, ok := strings.CutPrefix(dsn, "wire:"); ok {
		return openWireConn(addr)
	}
	if addr, ok := strings.CutPrefix(dsn, "wiremux:"); ok {
		return openWireMuxConn(addr)
	}
	ep, err := endpointFor(dsn)
	if err != nil {
		return nil, err
	}
	return &conn{sess: ep.OpenSession()}, nil
}

// endpointFor returns the endpoint for a DSN, building it on first use.
// The cache key is the full DSN including any '#label' fragment; the
// fragment is stripped before parsing, so labels select distinct
// instances of otherwise identical configurations.
func endpointFor(dsn string) (core.SessionExecutor, error) {
	endpointsMu.Lock()
	defer endpointsMu.Unlock()
	if ep, ok := endpoints[dsn]; ok {
		return ep, nil
	}
	base, _, _ := strings.Cut(dsn, "#")
	db, err := openDSN(base)
	if err != nil {
		return nil, err
	}
	exec, ok := divsql.Executor(db)
	if !ok {
		return nil, fmt.Errorf("sqldriver: endpoint %q exposes no executor", dsn)
	}
	ep, ok := exec.(core.SessionExecutor)
	if !ok {
		return nil, fmt.Errorf("sqldriver: endpoint %q does not support sessions", dsn)
	}
	endpoints[dsn] = ep
	return ep, nil
}

func openDSN(dsn string) (divsql.DB, error) {
	mode, arg, ok := strings.Cut(dsn, ":")
	if !ok {
		return nil, fmt.Errorf("sqldriver: malformed DSN %q (want mode:args)", dsn)
	}
	switch mode {
	case "single":
		return divsql.Open(divsql.ServerName(strings.TrimSpace(arg)))
	case "diverse":
		var names []divsql.ServerName
		for _, p := range strings.Split(arg, ",") {
			names = append(names, divsql.ServerName(strings.TrimSpace(p)))
		}
		return divsql.OpenDiverse(names...)
	case "replicated":
		name, nStr, ok := strings.Cut(arg, ",")
		n := 2
		if ok {
			v, err := strconv.Atoi(strings.TrimSpace(nStr))
			if err != nil {
				return nil, fmt.Errorf("sqldriver: bad replica count %q", nStr)
			}
			n = v
		}
		return divsql.OpenReplicated(divsql.ServerName(strings.TrimSpace(name)), n)
	default:
		return nil, fmt.Errorf("sqldriver: unknown mode %q", mode)
	}
}

// conn is one database/sql connection: one session of the shared
// endpoint, carrying the connection's transaction scope.
type conn struct {
	sess core.Session
}

var _ driver.Conn = (*conn)(nil)

// Prepare prepares the statement server-side: the endpoint session
// parses, dialect-checks and plans the text once (? and $n placeholders
// both work), and every execution ships typed arguments through the
// engine's bind path. Nothing is ever interpolated into SQL text.
func (c *conn) Prepare(query string) (driver.Stmt, error) {
	pe, ok := c.sess.(core.PreparedExecutor)
	if !ok {
		return nil, fmt.Errorf("sqldriver: endpoint does not support prepared statements")
	}
	st, err := pe.Prepare(query)
	if err != nil {
		return nil, err
	}
	return &stmt{st: st}, nil
}

// Close releases the connection's session, rolling back any open
// transaction. The endpoint itself (and its data) survives.
func (c *conn) Close() error { return c.sess.Close() }

// Begin starts a transaction on this connection's session.
func (c *conn) Begin() (driver.Tx, error) {
	if _, _, err := c.sess.Exec("BEGIN TRANSACTION"); err != nil {
		return nil, err
	}
	return &tx{conn: c}, nil
}

var _ driver.ConnBeginTx = (*conn)(nil)

// BeginTx starts a transaction at the requested isolation level. The
// level is issued as the transaction's first statement (SET TRANSACTION
// ISOLATION LEVEL ...), so it scopes to this transaction and leaves the
// session default untouched. A level the endpoint's dialect rejects
// fails here, before any work runs inside the transaction.
func (c *conn) BeginTx(ctx context.Context, opts driver.TxOptions) (driver.Tx, error) {
	iso, err := isoStatement(opts)
	if err != nil {
		return nil, err
	}
	if _, _, err := c.sess.Exec("BEGIN TRANSACTION"); err != nil {
		return nil, err
	}
	if iso != "" {
		if _, _, err := c.sess.Exec(iso); err != nil {
			_, _, _ = c.sess.Exec("ROLLBACK")
			return nil, err
		}
	}
	return &tx{conn: c}, nil
}

// isoStatement maps database/sql transaction options to the SET
// TRANSACTION statement requesting them ("" for the default level).
func isoStatement(opts driver.TxOptions) (string, error) {
	if opts.ReadOnly {
		return "", errors.New("sqldriver: read-only transactions are not supported")
	}
	switch sql.IsolationLevel(opts.Isolation) {
	case sql.LevelDefault:
		return "", nil
	case sql.LevelReadUncommitted:
		return "SET TRANSACTION ISOLATION LEVEL READ UNCOMMITTED", nil
	case sql.LevelReadCommitted:
		return "SET TRANSACTION ISOLATION LEVEL READ COMMITTED", nil
	case sql.LevelRepeatableRead:
		return "SET TRANSACTION ISOLATION LEVEL REPEATABLE READ", nil
	case sql.LevelSnapshot:
		return "SET TRANSACTION ISOLATION LEVEL SNAPSHOT", nil
	case sql.LevelSerializable:
		return "SET TRANSACTION ISOLATION LEVEL SERIALIZABLE", nil
	}
	return "", fmt.Errorf("sqldriver: unsupported isolation level %v", sql.IsolationLevel(opts.Isolation))
}

type tx struct{ conn *conn }

func (t *tx) Commit() error {
	_, _, err := t.conn.sess.Exec("COMMIT")
	return err
}

func (t *tx) Rollback() error {
	_, _, err := t.conn.sess.Exec("ROLLBACK")
	return err
}

// stmt adapts a server-side prepared statement (core.Statement) to
// database/sql's driver.Stmt. Arguments cross the boundary as typed
// values — the driver's only job is the driver.Value ↔ types.Value
// mapping.
type stmt struct {
	st core.Statement
}

var (
	_ driver.Stmt             = (*stmt)(nil)
	_ driver.StmtExecContext  = (*stmt)(nil)
	_ driver.StmtQueryContext = (*stmt)(nil)
)

func (s *stmt) Close() error  { return s.st.Close() }
func (s *stmt) NumInput() int { return s.st.NumParams() }

func (s *stmt) Exec(args []driver.Value) (driver.Result, error) {
	vals, err := toTypesValues(args)
	if err != nil {
		return nil, err
	}
	res, _, err := s.st.Exec(vals...)
	if err != nil {
		return nil, err
	}
	var affected int64
	if res != nil {
		affected = res.Affected
	}
	return result{affected: affected}, nil
}

func (s *stmt) Query(args []driver.Value) (driver.Rows, error) {
	vals, err := toTypesValues(args)
	if err != nil {
		return nil, err
	}
	res, _, err := s.st.Exec(vals...)
	if err != nil {
		return nil, err
	}
	if res == nil || res.Kind != engine.ResultRows {
		return &rows{}, nil
	}
	return &rows{cols: res.Columns, data: res.Rows}, nil
}

// ExecContext implements driver.StmtExecContext (the context is
// consulted up front; the simulated engines execute synchronously).
func (s *stmt) ExecContext(ctx context.Context, args []driver.NamedValue) (driver.Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return s.Exec(namedToValues(args))
}

// QueryContext implements driver.StmtQueryContext.
func (s *stmt) QueryContext(ctx context.Context, args []driver.NamedValue) (driver.Rows, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return s.Query(namedToValues(args))
}

func namedToValues(named []driver.NamedValue) []driver.Value {
	out := make([]driver.Value, len(named))
	for i, nv := range named {
		out[i] = nv.Value
	}
	return out
}

// toTypesValues maps database/sql driver values onto the engine's typed
// value system. time.Time maps to the engine's DATE (stored normalized
// as YYYY-MM-DD, the representation the four dialects share).
func toTypesValues(args []driver.Value) ([]types.Value, error) {
	if len(args) == 0 {
		return nil, nil
	}
	out := make([]types.Value, len(args))
	for i, a := range args {
		switch x := a.(type) {
		case nil:
			out[i] = types.Null()
		case int64:
			out[i] = types.NewInt(x)
		case float64:
			out[i] = types.NewFloat(x)
		case bool:
			out[i] = types.NewBool(x)
		case string:
			out[i] = types.NewString(x)
		case []byte:
			out[i] = types.NewString(string(x))
		case time.Time:
			out[i] = types.NewDate(x.Format("2006-01-02"))
		default:
			return nil, fmt.Errorf("sqldriver: unsupported argument type %T", a)
		}
	}
	return out, nil
}

type result struct{ affected int64 }

func (r result) LastInsertId() (int64, error) {
	return 0, errors.New("sqldriver: LastInsertId is not supported")
}

func (r result) RowsAffected() (int64, error) { return r.affected, nil }

type rows struct {
	cols []string
	data [][]types.Value
	pos  int
}

var _ driver.Rows = (*rows)(nil)

func (r *rows) Columns() []string { return r.cols }
func (r *rows) Close() error      { return nil }

func (r *rows) Next(dest []driver.Value) error {
	if r.pos >= len(r.data) {
		return io.EOF
	}
	row := r.data[r.pos]
	r.pos++
	for i := range dest {
		if i >= len(row) {
			dest[i] = nil
			continue
		}
		dest[i] = toDriverValue(row[i])
	}
	return nil
}

func toDriverValue(v types.Value) driver.Value {
	switch v.K {
	case types.KindNull:
		return nil
	case types.KindInt:
		return v.I
	case types.KindFloat:
		return v.F
	case types.KindBool:
		return v.B
	default:
		return v.S
	}
}
