package sqldriver

import (
	"database/sql"
	"database/sql/driver"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
)

var openSeq atomic.Int64

func open(t *testing.T, dsn string) *sql.DB {
	t.Helper()
	Register()
	// A unique '#label' per call gives every test a fresh endpoint
	// instance; within the test, all pooled connections share it.
	db, err := sql.Open(DriverName, fmt.Sprintf("%s#%s-%d", dsn, t.Name(), openSeq.Add(1)))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = db.Close() })
	return db
}

func TestSingleServerThroughDatabaseSQL(t *testing.T) {
	db := open(t, "single:PG")
	if _, err := db.Exec("CREATE TABLE T (A INT, S VARCHAR(20))"); err != nil {
		t.Fatal(err)
	}
	res, err := db.Exec("INSERT INTO T VALUES (?, ?), (?, ?)", 1, "one", 2, "two")
	if err != nil {
		t.Fatal(err)
	}
	if n, _ := res.RowsAffected(); n != 2 {
		t.Errorf("affected %d", n)
	}
	rows, err := db.Query("SELECT A, S FROM T WHERE A >= ? ORDER BY A", 1)
	if err != nil {
		t.Fatal(err)
	}
	defer rows.Close()
	var got []string
	for rows.Next() {
		var a int64
		var s string
		if err := rows.Scan(&a, &s); err != nil {
			t.Fatal(err)
		}
		got = append(got, s)
	}
	if err := rows.Err(); err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] != "one" || got[1] != "two" {
		t.Errorf("rows: %v", got)
	}
}

func TestDiverseThroughDatabaseSQL(t *testing.T) {
	db := open(t, "diverse:PG,OR,MS")
	if _, err := db.Exec("CREATE TABLE T (A INT)"); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec("INSERT INTO T VALUES (?)", 7); err != nil {
		t.Fatal(err)
	}
	var a int64
	if err := db.QueryRow("SELECT A FROM T").Scan(&a); err != nil {
		t.Fatal(err)
	}
	if a != 7 {
		t.Errorf("a = %d", a)
	}
}

func TestTransactionsThroughDatabaseSQL(t *testing.T) {
	db := open(t, "single:OR")
	if _, err := db.Exec("CREATE TABLE T (A INT)"); err != nil {
		t.Fatal(err)
	}
	tx, err := db.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tx.Exec("INSERT INTO T VALUES (1)"); err != nil {
		t.Fatal(err)
	}
	if err := tx.Rollback(); err != nil {
		t.Fatal(err)
	}
	var n int64
	if err := db.QueryRow("SELECT COUNT(*) AS N FROM T").Scan(&n); err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Errorf("rollback left %d rows", n)
	}
	tx, err = db.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tx.Exec("INSERT INTO T VALUES (2)"); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := db.QueryRow("SELECT COUNT(*) AS N FROM T").Scan(&n); err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Errorf("commit left %d rows", n)
	}
}

func TestNullScan(t *testing.T) {
	db := open(t, "single:IB")
	if _, err := db.Exec("CREATE TABLE T (A INT, S VARCHAR(10))"); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec("INSERT INTO T VALUES (?, ?)", nil, "x"); err != nil {
		t.Fatal(err)
	}
	var a sql.NullInt64
	var s string
	if err := db.QueryRow("SELECT A, S FROM T").Scan(&a, &s); err != nil {
		t.Fatal(err)
	}
	if a.Valid || s != "x" {
		t.Errorf("null scan: %+v %q", a, s)
	}
}

func TestNoClientSideInterpolation(t *testing.T) {
	db := open(t, "single:PG")
	if _, err := db.Exec("CREATE TABLE T (A INT, S VARCHAR(30))"); err != nil {
		t.Fatal(err)
	}
	// Hostile string arguments travel as typed values, never as SQL text:
	// quotes and placeholder characters in data cannot change the
	// statement.
	hostile := "o'brien? $1 '; DROP TABLE T"
	if _, err := db.Exec("INSERT INTO T VALUES (?, ?)", 1, hostile); err != nil {
		t.Fatal(err)
	}
	var s string
	if err := db.QueryRow("SELECT S FROM T WHERE A = ?", 1).Scan(&s); err != nil {
		t.Fatal(err)
	}
	if s != hostile {
		t.Errorf("round-trip mangled the string: %q", s)
	}
	// A '?' inside a string literal is not a placeholder.
	if _, err := db.Exec("INSERT INTO T VALUES (?, 'why?')", 2); err != nil {
		t.Fatal(err)
	}
	var n int64
	if err := db.QueryRow("SELECT COUNT(*) AS N FROM T WHERE S = 'why?'").Scan(&n); err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Errorf("literal '?' mis-handled: %d rows", n)
	}
}

func TestToTypesValues(t *testing.T) {
	vals, err := toTypesValues([]driver.Value{int64(1), 2.5, true, "s", []byte("b"), nil})
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"1", "2.5", "TRUE", "s", "b", "NULL"}
	for i, w := range want {
		if vals[i].String() != w {
			t.Errorf("vals[%d] = %s, want %s", i, vals[i], w)
		}
	}
	if _, err := toTypesValues([]driver.Value{struct{}{}}); err == nil ||
		!strings.Contains(err.Error(), "unsupported argument type") {
		t.Errorf("unsupported type not rejected: %v", err)
	}
}

func TestBadDSNs(t *testing.T) {
	Register()
	for _, dsn := range []string{"nonsense", "weird:PG", "replicated:PG,x"} {
		db, err := sql.Open(DriverName, dsn)
		if err != nil {
			continue // some errors surface at Open
		}
		if err := db.Ping(); err == nil {
			t.Errorf("DSN %q must fail", dsn)
		}
		_ = db.Close()
	}
}
