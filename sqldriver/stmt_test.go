package sqldriver

import (
	"database/sql"
	"strings"
	"sync"
	"testing"
)

// sql.Stmt re-prepares transparently on every pooled connection it is
// executed on; each connection's session plans the text once and reuses
// the plan. Concurrent executions across the pool must all work and see
// one shared database.
func TestStmtReuseAcrossPooledConns(t *testing.T) {
	db := open(t, "single:PG")
	db.SetMaxOpenConns(4)
	if _, err := db.Exec("CREATE TABLE T (A INT, S VARCHAR(20))"); err != nil {
		t.Fatal(err)
	}
	ins, err := db.Prepare("INSERT INTO T VALUES (?, ?)")
	if err != nil {
		t.Fatal(err)
	}
	defer ins.Close()
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 16; i++ {
				if _, err := ins.Exec(w*100+i, "v"); err != nil {
					errs <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	sel, err := db.Prepare("SELECT COUNT(*) AS N FROM T WHERE A >= ?")
	if err != nil {
		t.Fatal(err)
	}
	defer sel.Close()
	var n int64
	if err := sel.QueryRow(0).Scan(&n); err != nil {
		t.Fatal(err)
	}
	if n != 64 {
		t.Errorf("pooled inserts: %d rows", n)
	}
}

func TestTypedRoundTripsThroughBind(t *testing.T) {
	db := open(t, "single:PG")
	if _, err := db.Exec("CREATE TABLE T (A INT, F FLOAT, S VARCHAR(30), B BOOLEAN)"); err != nil {
		t.Fatal(err)
	}
	st, err := db.Prepare("INSERT INTO T VALUES (?, ?, ?, ?)")
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if _, err := st.Exec(int64(7), 2.25, "text", true); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Exec(nil, nil, nil, nil); err != nil {
		t.Fatal(err)
	}
	var (
		a sql.NullInt64
		f sql.NullFloat64
		s sql.NullString
		b sql.NullBool
	)
	if err := db.QueryRow("SELECT A, F, S, B FROM T WHERE A IS NOT NULL").Scan(&a, &f, &s, &b); err != nil {
		t.Fatal(err)
	}
	if a.Int64 != 7 || f.Float64 != 2.25 || s.String != "text" || !b.Bool {
		t.Errorf("typed round trip: %+v %+v %+v %+v", a, f, s, b)
	}
	if err := db.QueryRow("SELECT A, F, S, B FROM T WHERE A IS NULL").Scan(&a, &f, &s, &b); err != nil {
		t.Fatal(err)
	}
	if a.Valid || f.Valid || s.Valid || b.Valid {
		t.Errorf("NULL round trip: %+v %+v %+v %+v", a, f, s, b)
	}
}

func TestArgMismatchSurfacesAsDriverError(t *testing.T) {
	db := open(t, "single:PG")
	if _, err := db.Exec("CREATE TABLE T (A INT)"); err != nil {
		t.Fatal(err)
	}
	// Count mismatches are caught by database/sql against NumInput
	// (served by the server-side parameter count, not a client-side '?'
	// scan).
	if _, err := db.Exec("INSERT INTO T VALUES (?)"); err == nil ||
		!strings.Contains(err.Error(), "expected 1 arguments") {
		t.Errorf("missing arg: %v", err)
	}
	if _, err := db.Exec("INSERT INTO T VALUES (?)", 1, 2); err == nil ||
		!strings.Contains(err.Error(), "expected 1 arguments") {
		t.Errorf("extra arg: %v", err)
	}
	// Unsupported Go types surface as driver conversion errors.
	if _, err := db.Exec("INSERT INTO T VALUES (?)", struct{ X int }{1}); err == nil {
		t.Error("unsupported argument type must fail")
	}
	// Server-side type errors come back from the bind/coercion path.
	if _, err := db.Exec("INSERT INTO T VALUES (?)", "not-a-number"); err == nil ||
		!strings.Contains(err.Error(), "INTEGER") {
		t.Errorf("type mismatch: %v", err)
	}
}

func TestPrepareSyntaxErrorSurfacesEarly(t *testing.T) {
	db := open(t, "single:PG")
	if _, err := db.Prepare("SELEC nonsense"); err == nil ||
		!strings.Contains(err.Error(), "syntax error") {
		t.Errorf("prepare-time syntax error: %v", err)
	}
}
