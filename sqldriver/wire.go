package sqldriver

import (
	"context"
	"database/sql/driver"
	"sync"

	"divsql/internal/wire"
)

// This file is the driver's network modes.
//
// A "wire:host:port" DSN attaches to a running divsqld over the wire
// protocol instead of an in-process endpoint. Each database/sql
// connection dials its own TCP connection — one server-side session —
// so the pool semantics match the in-process modes: shared data,
// per-connection transactions, parallel reads.
//
// A "wiremux:host:port" DSN multiplexes instead: all connections of the
// pool share one TCP connection per address, each mapping to one
// server-side session over the wire protocol's session-multiplexing
// frames. The pool's transaction and visibility semantics are
// identical; the deployment holds N sockets open instead of
// N×pool-size.
//
// OK frames carry the affected-row count, so Result.RowsAffected works
// in both modes (a pre-affected-count server reports 0).

// openWireConn dials one connection to a divsqld at addr.
func openWireConn(addr string) (driver.Conn, error) {
	c, err := wire.Dial(addr)
	if err != nil {
		return nil, err
	}
	return &wireConn{c: c}, nil
}

type wireConn struct{ c *wire.Client }

var _ driver.Conn = (*wireConn)(nil)

// Prepare prepares the statement server-side over a PREPARE frame;
// executions ship typed arguments in BIND frames, so nothing is
// interpolated into SQL text on either side.
func (w *wireConn) Prepare(query string) (driver.Stmt, error) {
	st, err := w.c.Prepare(query)
	if err != nil {
		return nil, err
	}
	return &wireStmt{st: st}, nil
}

// Close closes the TCP connection; the server rolls back the
// connection's open transaction with its session.
func (w *wireConn) Close() error { return w.c.Close() }

// Begin starts a transaction on the connection's server-side session.
func (w *wireConn) Begin() (driver.Tx, error) {
	if _, err := w.c.Exec("BEGIN TRANSACTION"); err != nil {
		return nil, err
	}
	return &wireTx{c: w.c}, nil
}

var _ driver.ConnBeginTx = (*wireConn)(nil)

// BeginTx starts a transaction at the requested isolation level; the
// level travels as ordinary statement text (SET TRANSACTION as the
// transaction's first statement), so the wire protocol needs no new
// frames.
func (w *wireConn) BeginTx(ctx context.Context, opts driver.TxOptions) (driver.Tx, error) {
	iso, err := isoStatement(opts)
	if err != nil {
		return nil, err
	}
	if _, err := w.c.Exec("BEGIN TRANSACTION"); err != nil {
		return nil, err
	}
	if iso != "" {
		if _, err := w.c.Exec(iso); err != nil {
			_, _ = w.c.Exec("ROLLBACK")
			return nil, err
		}
	}
	return &wireTx{c: w.c}, nil
}

type wireTx struct{ c *wire.Client }

func (t *wireTx) Commit() error {
	_, err := t.c.Exec("COMMIT")
	return err
}

func (t *wireTx) Rollback() error {
	_, err := t.c.Exec("ROLLBACK")
	return err
}

// wireStmt adapts a wire prepared-statement handle to driver.Stmt.
type wireStmt struct{ st *wire.Stmt }

var _ driver.Stmt = (*wireStmt)(nil)

func (s *wireStmt) Close() error  { return s.st.Close() }
func (s *wireStmt) NumInput() int { return s.st.NumParams() }

func (s *wireStmt) Exec(args []driver.Value) (driver.Result, error) {
	vals, err := toTypesValues(args)
	if err != nil {
		return nil, err
	}
	res, err := s.st.Exec(vals...)
	if err != nil {
		return nil, err
	}
	return result{affected: res.Affected}, nil
}

func (s *wireStmt) Query(args []driver.Value) (driver.Rows, error) {
	vals, err := toTypesValues(args)
	if err != nil {
		return nil, err
	}
	res, err := s.st.Exec(vals...)
	if err != nil {
		return nil, err
	}
	return &rows{cols: res.Columns, data: res.Rows}, nil
}

// ---------------------------------------------------------------------------
// Multiplexed wire mode

// muxes caches one multiplexed connection per address: every
// database/sql connection of a "wiremux:" pool is one session of the
// shared Mux. Entries are reference-counted by their open sessions —
// when the pool closes its last connection the Mux (and its TCP
// connection and readLoop goroutine) is closed and dropped, so a closed
// pool holds no sockets and a later pool re-dials fresh.
var (
	muxesMu sync.Mutex
	muxes   = map[string]*muxEntry{}
)

type muxEntry struct {
	m    *wire.Mux
	refs int
}

// releaseMux drops one session's reference; the last one out closes the
// shared Mux and removes it from the cache (unless a newer Mux for the
// same address has already replaced it there).
func releaseMux(addr string, e *muxEntry) {
	muxesMu.Lock()
	e.refs--
	last := e.refs == 0
	if last && muxes[addr] == e {
		delete(muxes, addr)
	}
	muxesMu.Unlock()
	if last {
		_ = e.m.Close()
	}
}

// openWireMuxConn opens one multiplexed session to the divsqld at addr,
// dialing the shared Mux on first use.
func openWireMuxConn(addr string) (driver.Conn, error) {
	muxesMu.Lock()
	e, ok := muxes[addr]
	if !ok {
		m, err := wire.DialMux(addr)
		if err != nil {
			muxesMu.Unlock()
			return nil, err
		}
		e = &muxEntry{m: m}
		muxes[addr] = e
	}
	e.refs++
	muxesMu.Unlock()
	sess, err := e.m.Session()
	if err != nil {
		// The shared Mux may have died (server restart); forget it so the
		// next open re-dials, and drop this open's reference.
		muxesMu.Lock()
		if muxes[addr] == e {
			delete(muxes, addr)
		}
		muxesMu.Unlock()
		releaseMux(addr, e)
		return nil, err
	}
	return &wireMuxConn{s: sess, addr: addr, e: e}, nil
}

type wireMuxConn struct {
	s    *wire.MuxSession
	addr string
	e    *muxEntry
}

var (
	_ driver.Conn        = (*wireMuxConn)(nil)
	_ driver.ConnBeginTx = (*wireMuxConn)(nil)
)

func (w *wireMuxConn) Prepare(query string) (driver.Stmt, error) {
	st, err := w.s.Prepare(query)
	if err != nil {
		return nil, err
	}
	return &wireMuxStmt{st: st}, nil
}

// Close detaches the server-side session (rolling back its open
// transaction) and drops the session's reference on the shared Mux; the
// TCP connection stays up while other pool connections still hold it.
func (w *wireMuxConn) Close() error {
	err := w.s.Close()
	releaseMux(w.addr, w.e)
	return err
}

func (w *wireMuxConn) Begin() (driver.Tx, error) {
	if _, err := w.s.Exec("BEGIN TRANSACTION"); err != nil {
		return nil, err
	}
	return &wireMuxTx{s: w.s}, nil
}

func (w *wireMuxConn) BeginTx(ctx context.Context, opts driver.TxOptions) (driver.Tx, error) {
	iso, err := isoStatement(opts)
	if err != nil {
		return nil, err
	}
	if _, err := w.s.Exec("BEGIN TRANSACTION"); err != nil {
		return nil, err
	}
	if iso != "" {
		if _, err := w.s.Exec(iso); err != nil {
			_, _ = w.s.Exec("ROLLBACK")
			return nil, err
		}
	}
	return &wireMuxTx{s: w.s}, nil
}

type wireMuxTx struct{ s *wire.MuxSession }

func (t *wireMuxTx) Commit() error {
	_, err := t.s.Exec("COMMIT")
	return err
}

func (t *wireMuxTx) Rollback() error {
	_, err := t.s.Exec("ROLLBACK")
	return err
}

type wireMuxStmt struct{ st *wire.MuxStmt }

var _ driver.Stmt = (*wireMuxStmt)(nil)

func (s *wireMuxStmt) Close() error  { return s.st.Close() }
func (s *wireMuxStmt) NumInput() int { return s.st.NumParams() }

func (s *wireMuxStmt) Exec(args []driver.Value) (driver.Result, error) {
	vals, err := toTypesValues(args)
	if err != nil {
		return nil, err
	}
	res, err := s.st.Exec(vals...)
	if err != nil {
		return nil, err
	}
	return result{affected: res.Affected}, nil
}

func (s *wireMuxStmt) Query(args []driver.Value) (driver.Rows, error) {
	vals, err := toTypesValues(args)
	if err != nil {
		return nil, err
	}
	res, err := s.st.Exec(vals...)
	if err != nil {
		return nil, err
	}
	return &rows{cols: res.Columns, data: res.Rows}, nil
}

// Metrics scrapes the server's metrics over the wire METRICS frame,
// returning the Prometheus exposition document. It dials its own
// connection, so it works alongside any database/sql pool state.
func Metrics(addr string) (string, error) {
	c, err := wire.Dial(addr)
	if err != nil {
		return "", err
	}
	defer c.Close()
	return c.Metrics()
}
