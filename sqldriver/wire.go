package sqldriver

import (
	"context"
	"database/sql/driver"
	"sync"

	"divsql/internal/wire"
)

// This file is the driver's network modes.
//
// A "wire:host:port" DSN attaches to a running divsqld over the wire
// protocol instead of an in-process endpoint. Each database/sql
// connection dials its own TCP connection — one server-side session —
// so the pool semantics match the in-process modes: shared data,
// per-connection transactions, parallel reads.
//
// A "wiremux:host:port" DSN multiplexes instead: all connections of the
// pool share one TCP connection per address, each mapping to one
// server-side session over the wire protocol's session-multiplexing
// frames. The pool's transaction and visibility semantics are
// identical; the deployment holds N sockets open instead of
// N×pool-size.
//
// OK frames carry the affected-row count, so Result.RowsAffected works
// in both modes (a pre-affected-count server reports 0).

// openWireConn dials one connection to a divsqld at addr.
func openWireConn(addr string) (driver.Conn, error) {
	c, err := wire.Dial(addr)
	if err != nil {
		return nil, err
	}
	return &wireConn{c: c}, nil
}

type wireConn struct{ c *wire.Client }

var _ driver.Conn = (*wireConn)(nil)

// Prepare prepares the statement server-side over a PREPARE frame;
// executions ship typed arguments in BIND frames, so nothing is
// interpolated into SQL text on either side.
func (w *wireConn) Prepare(query string) (driver.Stmt, error) {
	st, err := w.c.Prepare(query)
	if err != nil {
		return nil, err
	}
	return &wireStmt{st: st}, nil
}

// Close closes the TCP connection; the server rolls back the
// connection's open transaction with its session.
func (w *wireConn) Close() error { return w.c.Close() }

// Begin starts a transaction on the connection's server-side session.
func (w *wireConn) Begin() (driver.Tx, error) {
	if _, err := w.c.Exec("BEGIN TRANSACTION"); err != nil {
		return nil, err
	}
	return &wireTx{c: w.c}, nil
}

var _ driver.ConnBeginTx = (*wireConn)(nil)

// BeginTx starts a transaction at the requested isolation level; the
// level travels as ordinary statement text (SET TRANSACTION as the
// transaction's first statement), so the wire protocol needs no new
// frames.
func (w *wireConn) BeginTx(ctx context.Context, opts driver.TxOptions) (driver.Tx, error) {
	iso, err := isoStatement(opts)
	if err != nil {
		return nil, err
	}
	if _, err := w.c.Exec("BEGIN TRANSACTION"); err != nil {
		return nil, err
	}
	if iso != "" {
		if _, err := w.c.Exec(iso); err != nil {
			_, _ = w.c.Exec("ROLLBACK")
			return nil, err
		}
	}
	return &wireTx{c: w.c}, nil
}

type wireTx struct{ c *wire.Client }

func (t *wireTx) Commit() error {
	_, err := t.c.Exec("COMMIT")
	return err
}

func (t *wireTx) Rollback() error {
	_, err := t.c.Exec("ROLLBACK")
	return err
}

// wireStmt adapts a wire prepared-statement handle to driver.Stmt.
type wireStmt struct{ st *wire.Stmt }

var _ driver.Stmt = (*wireStmt)(nil)

func (s *wireStmt) Close() error  { return s.st.Close() }
func (s *wireStmt) NumInput() int { return s.st.NumParams() }

func (s *wireStmt) Exec(args []driver.Value) (driver.Result, error) {
	vals, err := toTypesValues(args)
	if err != nil {
		return nil, err
	}
	res, err := s.st.Exec(vals...)
	if err != nil {
		return nil, err
	}
	return result{affected: res.Affected}, nil
}

func (s *wireStmt) Query(args []driver.Value) (driver.Rows, error) {
	vals, err := toTypesValues(args)
	if err != nil {
		return nil, err
	}
	res, err := s.st.Exec(vals...)
	if err != nil {
		return nil, err
	}
	return &rows{cols: res.Columns, data: res.Rows}, nil
}

// ---------------------------------------------------------------------------
// Multiplexed wire mode

// muxes caches one multiplexed connection per address: every
// database/sql connection of a "wiremux:" pool is one session of the
// shared Mux.
var (
	muxesMu sync.Mutex
	muxes   = map[string]*wire.Mux{}
)

// openWireMuxConn opens one multiplexed session to the divsqld at addr,
// dialing the shared Mux on first use.
func openWireMuxConn(addr string) (driver.Conn, error) {
	muxesMu.Lock()
	m, ok := muxes[addr]
	if !ok {
		var err error
		m, err = wire.DialMux(addr)
		if err != nil {
			muxesMu.Unlock()
			return nil, err
		}
		muxes[addr] = m
	}
	muxesMu.Unlock()
	sess, err := m.Session()
	if err != nil {
		// The shared Mux may have died (server restart); forget it so the
		// next open re-dials.
		muxesMu.Lock()
		if muxes[addr] == m {
			delete(muxes, addr)
			_ = m.Close()
		}
		muxesMu.Unlock()
		return nil, err
	}
	return &wireMuxConn{s: sess}, nil
}

type wireMuxConn struct{ s *wire.MuxSession }

var (
	_ driver.Conn        = (*wireMuxConn)(nil)
	_ driver.ConnBeginTx = (*wireMuxConn)(nil)
)

func (w *wireMuxConn) Prepare(query string) (driver.Stmt, error) {
	st, err := w.s.Prepare(query)
	if err != nil {
		return nil, err
	}
	return &wireMuxStmt{st: st}, nil
}

// Close detaches the server-side session (rolling back its open
// transaction); the shared TCP connection stays up for the pool.
func (w *wireMuxConn) Close() error { return w.s.Close() }

func (w *wireMuxConn) Begin() (driver.Tx, error) {
	if _, err := w.s.Exec("BEGIN TRANSACTION"); err != nil {
		return nil, err
	}
	return &wireMuxTx{s: w.s}, nil
}

func (w *wireMuxConn) BeginTx(ctx context.Context, opts driver.TxOptions) (driver.Tx, error) {
	iso, err := isoStatement(opts)
	if err != nil {
		return nil, err
	}
	if _, err := w.s.Exec("BEGIN TRANSACTION"); err != nil {
		return nil, err
	}
	if iso != "" {
		if _, err := w.s.Exec(iso); err != nil {
			_, _ = w.s.Exec("ROLLBACK")
			return nil, err
		}
	}
	return &wireMuxTx{s: w.s}, nil
}

type wireMuxTx struct{ s *wire.MuxSession }

func (t *wireMuxTx) Commit() error {
	_, err := t.s.Exec("COMMIT")
	return err
}

func (t *wireMuxTx) Rollback() error {
	_, err := t.s.Exec("ROLLBACK")
	return err
}

type wireMuxStmt struct{ st *wire.MuxStmt }

var _ driver.Stmt = (*wireMuxStmt)(nil)

func (s *wireMuxStmt) Close() error  { return s.st.Close() }
func (s *wireMuxStmt) NumInput() int { return s.st.NumParams() }

func (s *wireMuxStmt) Exec(args []driver.Value) (driver.Result, error) {
	vals, err := toTypesValues(args)
	if err != nil {
		return nil, err
	}
	res, err := s.st.Exec(vals...)
	if err != nil {
		return nil, err
	}
	return result{affected: res.Affected}, nil
}

func (s *wireMuxStmt) Query(args []driver.Value) (driver.Rows, error) {
	vals, err := toTypesValues(args)
	if err != nil {
		return nil, err
	}
	res, err := s.st.Exec(vals...)
	if err != nil {
		return nil, err
	}
	return &rows{cols: res.Columns, data: res.Rows}, nil
}

// Metrics scrapes the server's metrics over the wire METRICS frame,
// returning the Prometheus exposition document. It dials its own
// connection, so it works alongside any database/sql pool state.
func Metrics(addr string) (string, error) {
	c, err := wire.Dial(addr)
	if err != nil {
		return "", err
	}
	defer c.Close()
	return c.Metrics()
}
