package sqldriver

import (
	"context"
	"database/sql/driver"

	"divsql/internal/wire"
)

// This file is the driver's network mode: a "wire:host:port" DSN
// attaches to a running divsqld over the wire protocol instead of an
// in-process endpoint. Each database/sql connection dials its own TCP
// connection — one server-side session — so the pool semantics match
// the in-process modes: shared data, per-connection transactions,
// parallel reads.
//
// The wire protocol does not carry affected-row counts (OK frames
// report result shape and latency only), so Result.RowsAffected
// reports 0 in this mode.

// openWireConn dials one connection to a divsqld at addr.
func openWireConn(addr string) (driver.Conn, error) {
	c, err := wire.Dial(addr)
	if err != nil {
		return nil, err
	}
	return &wireConn{c: c}, nil
}

type wireConn struct{ c *wire.Client }

var _ driver.Conn = (*wireConn)(nil)

// Prepare prepares the statement server-side over a PREPARE frame;
// executions ship typed arguments in BIND frames, so nothing is
// interpolated into SQL text on either side.
func (w *wireConn) Prepare(query string) (driver.Stmt, error) {
	st, err := w.c.Prepare(query)
	if err != nil {
		return nil, err
	}
	return &wireStmt{st: st}, nil
}

// Close closes the TCP connection; the server rolls back the
// connection's open transaction with its session.
func (w *wireConn) Close() error { return w.c.Close() }

// Begin starts a transaction on the connection's server-side session.
func (w *wireConn) Begin() (driver.Tx, error) {
	if _, err := w.c.Exec("BEGIN TRANSACTION"); err != nil {
		return nil, err
	}
	return &wireTx{c: w.c}, nil
}

var _ driver.ConnBeginTx = (*wireConn)(nil)

// BeginTx starts a transaction at the requested isolation level; the
// level travels as ordinary statement text (SET TRANSACTION as the
// transaction's first statement), so the wire protocol needs no new
// frames.
func (w *wireConn) BeginTx(ctx context.Context, opts driver.TxOptions) (driver.Tx, error) {
	iso, err := isoStatement(opts)
	if err != nil {
		return nil, err
	}
	if _, err := w.c.Exec("BEGIN TRANSACTION"); err != nil {
		return nil, err
	}
	if iso != "" {
		if _, err := w.c.Exec(iso); err != nil {
			_, _ = w.c.Exec("ROLLBACK")
			return nil, err
		}
	}
	return &wireTx{c: w.c}, nil
}

type wireTx struct{ c *wire.Client }

func (t *wireTx) Commit() error {
	_, err := t.c.Exec("COMMIT")
	return err
}

func (t *wireTx) Rollback() error {
	_, err := t.c.Exec("ROLLBACK")
	return err
}

// wireStmt adapts a wire prepared-statement handle to driver.Stmt.
type wireStmt struct{ st *wire.Stmt }

var _ driver.Stmt = (*wireStmt)(nil)

func (s *wireStmt) Close() error  { return s.st.Close() }
func (s *wireStmt) NumInput() int { return s.st.NumParams() }

func (s *wireStmt) Exec(args []driver.Value) (driver.Result, error) {
	vals, err := toTypesValues(args)
	if err != nil {
		return nil, err
	}
	if _, err := s.st.Exec(vals...); err != nil {
		return nil, err
	}
	return result{affected: 0}, nil
}

func (s *wireStmt) Query(args []driver.Value) (driver.Rows, error) {
	vals, err := toTypesValues(args)
	if err != nil {
		return nil, err
	}
	res, err := s.st.Exec(vals...)
	if err != nil {
		return nil, err
	}
	return &rows{cols: res.Columns, data: res.Rows}, nil
}

// Metrics scrapes the server's metrics over the wire METRICS frame,
// returning the Prometheus exposition document. It dials its own
// connection, so it works alongside any database/sql pool state.
func Metrics(addr string) (string, error) {
	c, err := wire.Dial(addr)
	if err != nil {
		return "", err
	}
	defer c.Close()
	return c.Metrics()
}
