package sqldriver

import (
	"context"
	"database/sql"
	"fmt"
	"sync"
	"testing"
)

// TestPooledConnectionsShareOneDatabase: with endpoints cached per DSN,
// every connection of the pool attaches to the same database — the fix
// for the original driver, where each pooled connection silently opened
// its own empty database.
func TestPooledConnectionsShareOneDatabase(t *testing.T) {
	db := open(t, "single:PG")
	db.SetMaxOpenConns(4)
	if _, err := db.Exec("CREATE TABLE T (A INT)"); err != nil {
		t.Fatal(err)
	}
	// Force several distinct pooled connections and use each: all of
	// them must see (and extend) the same table.
	ctx := context.Background()
	conns := make([]*sql.Conn, 0, 3)
	for i := 0; i < 3; i++ {
		c, err := db.Conn(ctx)
		if err != nil {
			t.Fatal(err)
		}
		conns = append(conns, c)
		if _, err := c.ExecContext(ctx, fmt.Sprintf("INSERT INTO T VALUES (%d)", i)); err != nil {
			t.Fatalf("conn %d: %v", i, err)
		}
	}
	for i, c := range conns {
		var n int64
		if err := c.QueryRowContext(ctx, "SELECT COUNT(*) AS N FROM T").Scan(&n); err != nil {
			t.Fatal(err)
		}
		if n != 3 {
			t.Errorf("conn %d sees %d rows, want 3", i, n)
		}
		_ = c.Close()
	}
}

// TestPooledTransactionsAreConnectionScoped: transactions on two pooled
// connections are independent — one rolling back does not disturb the
// other committing.
func TestPooledTransactionsAreConnectionScoped(t *testing.T) {
	db := open(t, "single:OR")
	db.SetMaxOpenConns(4)
	if _, err := db.Exec("CREATE TABLE TA (A INT)"); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec("CREATE TABLE TB (A INT)"); err != nil {
		t.Fatal(err)
	}
	txA, err := db.Begin()
	if err != nil {
		t.Fatal(err)
	}
	txB, err := db.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := txA.Exec("INSERT INTO TA VALUES (1)"); err != nil {
		t.Fatal(err)
	}
	if _, err := txB.Exec("INSERT INTO TB VALUES (2)"); err != nil {
		t.Fatal(err)
	}
	if err := txA.Rollback(); err != nil {
		t.Fatal(err)
	}
	if err := txB.Commit(); err != nil {
		t.Fatal(err)
	}
	var n int64
	if err := db.QueryRow("SELECT COUNT(*) AS N FROM TA").Scan(&n); err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Errorf("TA: rolled-back row survived (%d rows)", n)
	}
	if err := db.QueryRow("SELECT COUNT(*) AS N FROM TB").Scan(&n); err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Errorf("TB: committed row lost (%d rows)", n)
	}
}

// TestConcurrentPooledWorkload drives a diverse endpoint from concurrent
// goroutines through database/sql. Run with -race.
func TestConcurrentPooledWorkload(t *testing.T) {
	db := open(t, "diverse:PG,OR,MS")
	db.SetMaxOpenConns(4)
	const workers = 4
	const rounds = 8
	for i := 0; i < workers; i++ {
		if _, err := db.Exec(fmt.Sprintf("CREATE TABLE P%d (X INT)", i)); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				if _, err := db.Exec(fmt.Sprintf("INSERT INTO P%d VALUES (%d)", i, r)); err != nil {
					t.Errorf("worker %d: %v", i, err)
					return
				}
				var n int64
				if err := db.QueryRow(fmt.Sprintf("SELECT COUNT(*) AS N FROM P%d", i)).Scan(&n); err != nil {
					t.Errorf("worker %d: %v", i, err)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	for i := 0; i < workers; i++ {
		var n int64
		if err := db.QueryRow(fmt.Sprintf("SELECT COUNT(*) AS N FROM P%d", i)).Scan(&n); err != nil {
			t.Fatal(err)
		}
		if n != rounds {
			t.Errorf("P%d has %d rows, want %d", i, n, rounds)
		}
	}
}
