package sqldriver

import (
	"database/sql"
	"fmt"
	"sync"
	"testing"

	"divsql"
	"divsql/internal/wire"
)

func startWireServer(t *testing.T) string {
	t.Helper()
	db, err := divsql.Open(divsql.PG, divsql.WithFaults(false))
	if err != nil {
		t.Fatal(err)
	}
	exec, ok := divsql.Executor(db)
	if !ok {
		t.Fatal("no executor")
	}
	ws := wire.NewServer(exec)
	addr, err := ws.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = ws.Close() })
	return addr
}

// TestWireRowsAffected is the affected-count round trip of the network
// mode: the count crosses the wire in the OK head and surfaces through
// database/sql's Result for INSERT, UPDATE and DELETE.
func TestWireRowsAffected(t *testing.T) {
	Register()
	addr := startWireServer(t)
	db, err := sql.Open(DriverName, "wire:"+addr)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if _, err := db.Exec("CREATE TABLE T (A INT)"); err != nil {
		t.Fatal(err)
	}
	res, err := db.Exec("INSERT INTO T VALUES (1), (2), (3)")
	if err != nil {
		t.Fatal(err)
	}
	if n, _ := res.RowsAffected(); n != 3 {
		t.Errorf("INSERT RowsAffected = %d, want 3", n)
	}
	res, err = db.Exec("UPDATE T SET A = A * 10 WHERE A >= 2")
	if err != nil {
		t.Fatal(err)
	}
	if n, _ := res.RowsAffected(); n != 2 {
		t.Errorf("UPDATE RowsAffected = %d, want 2", n)
	}
	// The placeholder path (PREPARE/BIND frames) carries the count too.
	res, err = db.Exec("DELETE FROM T WHERE A > ?", 5)
	if err != nil {
		t.Fatal(err)
	}
	if n, _ := res.RowsAffected(); n != 2 {
		t.Errorf("DELETE RowsAffected = %d, want 2", n)
	}
}

// TestWireMuxCloseReleasesSharedConn: the per-address Mux is reference-
// counted by its open sessions — closing the pool must close and drop
// the shared TCP connection instead of leaking it (and its readLoop
// goroutine) for process lifetime, and a later pool must re-dial fresh.
func TestWireMuxCloseReleasesSharedConn(t *testing.T) {
	Register()
	addr := startWireServer(t)
	db, err := sql.Open(DriverName, "wiremux:"+addr)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec("CREATE TABLE M (A INT)"); err != nil {
		t.Fatal(err)
	}
	muxesMu.Lock()
	_, cached := muxes[addr]
	muxesMu.Unlock()
	if !cached {
		t.Fatal("no shared mux cached while pool is open")
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	muxesMu.Lock()
	_, cached = muxes[addr]
	muxesMu.Unlock()
	if cached {
		t.Errorf("shared mux for %s still cached after pool close", addr)
	}
	// A fresh pool re-dials and sees the server's state.
	db2, err := sql.Open(DriverName, "wiremux:"+addr)
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	var n int
	if err := db2.QueryRow("SELECT COUNT(*) AS N FROM M").Scan(&n); err != nil {
		t.Fatalf("re-dial after release: %v", err)
	}
}

// TestWireMuxPool drives a database/sql pool over one multiplexed TCP
// connection: concurrent transactions stay isolated and the affected
// counts survive the shared socket.
func TestWireMuxPool(t *testing.T) {
	Register()
	addr := startWireServer(t)
	db, err := sql.Open(DriverName, "wiremux:"+addr)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	db.SetMaxOpenConns(8)
	if _, err := db.Exec("CREATE TABLE P (W INT, V INT)"); err != nil {
		t.Fatal(err)
	}
	res, err := db.Exec("INSERT INTO P VALUES (0, 0)")
	if err != nil {
		t.Fatal(err)
	}
	if n, _ := res.RowsAffected(); n != 1 {
		t.Errorf("mux INSERT RowsAffected = %d, want 1", n)
	}
	var wg sync.WaitGroup
	errs := make([]error, 6)
	for w := 0; w < len(errs); w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				tx, err := db.Begin()
				if err != nil {
					errs[w] = err
					return
				}
				if _, err := tx.Exec(fmt.Sprintf("INSERT INTO P VALUES (%d, %d)", w+1, i)); err != nil {
					errs[w] = err
					_ = tx.Rollback()
					return
				}
				if err := tx.Commit(); err != nil {
					errs[w] = err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	for w, err := range errs {
		if err != nil {
			t.Fatalf("worker %d: %v", w, err)
		}
	}
	var n int
	if err := db.QueryRow("SELECT COUNT(*) AS N FROM P").Scan(&n); err != nil {
		t.Fatal(err)
	}
	if n != 61 {
		t.Errorf("rows after concurrent mux transactions: %d, want 61", n)
	}
	// Uncommitted work in one pooled session is invisible to another.
	tx, err := db.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tx.Exec("INSERT INTO P VALUES (99, 99)"); err != nil {
		t.Fatal(err)
	}
	if err := db.QueryRow("SELECT COUNT(*) AS N FROM P WHERE W = 99").Scan(&n); err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Errorf("uncommitted row visible across mux sessions")
	}
	if err := tx.Rollback(); err != nil {
		t.Fatal(err)
	}
}
