// Quickstart: open a diverse fault-tolerant SQL server assembled from
// three simulated off-the-shelf products and run a few statements. A
// silently-wrong result from one replica is detected and masked by the
// majority — the scenario the paper's Section 2.1 motivates.
package main

import (
	"fmt"
	"log"

	"divsql"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// Three diverse replicas: detection AND masking by majority.
	db, err := divsql.OpenDiverse(divsql.PG, divsql.OR, divsql.MS)
	if err != nil {
		return err
	}
	defer db.Close()

	stmts := []string{
		`CREATE TABLE ACCOUNTS (ID INT PRIMARY KEY, OWNER VARCHAR(30), BALANCE FLOAT)`,
		`INSERT INTO ACCOUNTS VALUES (1, 'ada', 100.25)`,
		`INSERT INTO ACCOUNTS VALUES (2, 'grace', 310.5)`,
		`INSERT INTO ACCOUNTS VALUES (3, 'edsger', 42.75)`,
		`UPDATE ACCOUNTS SET BALANCE = BALANCE + 10 WHERE ID = 1`,
	}
	for _, s := range stmts {
		if _, err := db.Exec(s); err != nil {
			return fmt.Errorf("%s: %w", s, err)
		}
	}

	res, err := db.Exec(`SELECT OWNER, BALANCE FROM ACCOUNTS WHERE BALANCE > 50 ORDER BY BALANCE DESC`)
	if err != nil {
		return err
	}
	fmt.Println("columns:", res.Columns)
	for _, row := range res.Rows {
		fmt.Println("row:    ", row)
	}

	if m, ok := divsql.Metrics(db); ok {
		fmt.Printf("\nmiddleware: %d statements, %d unanimous, %d failures masked, %d divergences detected\n",
			m.Statements, m.Unanimous, m.MaskedFailures, m.DetectedSplits)
	}
	return nil
}
