// Diverse-cluster example: serve a diverse fault-tolerant server over
// TCP with the wire protocol, drive it through a network client, and
// demonstrate the contrast the paper draws in Section 2.1:
//
//   - the non-diverse crash-only baseline silently returns an incorrect
//     result produced by a shared fault;
//   - the diverse configuration detects the same situation.
//
// The demonstration uses bug PG-77's failure region (floating-point
// multiplication precision): PG-sim and MS-sim share the fault, OR-sim
// does not.
package main

import (
	"fmt"
	"log"

	"divsql"
	"divsql/internal/wire"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// A diverse pair whose members do NOT share the arithmetic fault.
	diverse, err := divsql.OpenDiverse(divsql.PG, divsql.OR)
	if err != nil {
		return err
	}
	exec, _ := divsql.Executor(diverse)
	srv := wire.NewServer(exec)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		return err
	}
	defer srv.Close()
	fmt.Println("diverse pair (PG+OR) serving on", addr)

	client, err := wire.Dial(addr)
	if err != nil {
		return err
	}
	defer client.Close()

	setup := []string{
		"CREATE TABLE RATES (N FLOAT)",
		"INSERT INTO RATES VALUES (1.00000007)",
	}
	for _, s := range setup {
		if _, err := client.Exec(s); err != nil {
			return err
		}
	}

	// This query is in the shared failure region of PG-sim and MS-sim
	// (bug 77): PG-sim computes it wrongly, OR-sim correctly. The
	// diverse pair DETECTS the divergence instead of returning bad data.
	const q = "SELECT N * 16777216.0 AS PRECISE FROM RATES"
	_, err = client.Exec(q)
	fmt.Printf("diverse pair on the faulty query -> %v\n", err)

	// The same workload against a replicated pair of identical PG-sims:
	// both replicas compute the same wrong answer; under the fail-stop
	// assumption nothing is detected and the client gets bad data.
	baseline, err := divsql.OpenReplicated(divsql.PG, 2)
	if err != nil {
		return err
	}
	for _, s := range setup {
		if _, err := baseline.Exec(s); err != nil {
			return err
		}
	}
	res, err := baseline.Exec(q)
	if err != nil {
		return err
	}
	fmt.Printf("non-diverse PG x2 on the same query -> silently returns %v (correct value is 16777217.17...)\n",
		res.Rows[0][0])
	return nil
}
