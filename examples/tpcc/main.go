// TPC-C example: the paper's statistical-testing campaign (Section 7).
// The same deterministic transaction mix drives three configurations —
// a single server, a non-diverse replicated pair, and a diverse triple —
// and reports throughput-relevant statement counts, failures and the
// workload's consistency invariants.
package main

import (
	"flag"
	"fmt"
	"log"

	"divsql"
	"divsql/internal/core"
	"divsql/internal/tpcc"
)

func main() {
	txns := flag.Int("txns", 2000, "transactions per configuration")
	flag.Parse()
	if err := run(*txns); err != nil {
		log.Fatal(err)
	}
}

func run(txns int) error {
	configs := []struct {
		name string
		open func() (divsql.DB, error)
	}{
		{"single OR-sim", func() (divsql.DB, error) { return divsql.Open(divsql.OR) }},
		{"non-diverse PG-sim x2", func() (divsql.DB, error) { return divsql.OpenReplicated(divsql.PG, 2) }},
		{"diverse PG+OR+MS", func() (divsql.DB, error) { return divsql.OpenDiverse(divsql.PG, divsql.OR, divsql.MS) }},
	}
	for _, c := range configs {
		db, err := c.open()
		if err != nil {
			return err
		}
		exec, ok := divsql.Executor(db)
		if !ok {
			return fmt.Errorf("%s: no executor", c.name)
		}
		if err := runOne(c.name, exec, txns); err != nil {
			return err
		}
		if m, ok := divsql.Metrics(db); ok {
			fmt.Printf("  middleware: masked=%d detected-splits=%d resyncs=%d rephrase-recovered=%d\n",
				m.MaskedFailures, m.DetectedSplits, m.Resyncs, m.RephraseRecovered)
		}
		db.Close()
		fmt.Println()
	}
	return nil
}

func runOne(name string, exec core.Executor, txns int) error {
	cfg := tpcc.DefaultConfig()
	if err := tpcc.Setup(exec, cfg); err != nil {
		return fmt.Errorf("%s setup: %w", name, err)
	}
	driver := tpcc.NewDriver(cfg)
	m, err := driver.Run(exec, txns)
	if err != nil {
		return fmt.Errorf("%s run: %w", name, err)
	}
	consistency := "OK"
	if err := tpcc.CheckConsistency(exec); err != nil {
		consistency = err.Error()
	}
	fmt.Printf("%s:\n  %d transactions, %d statements, %d errors, simulated time %v\n  mix: %v\n  consistency: %s\n",
		name, m.Transactions, m.Statements, m.Errors, m.SimLatency, m.PerType, consistency)
	return nil
}
