// Faultstudy example: reproduce the paper's experiment through the
// public API and print the two-version analysis (Table 3) plus the
// headline statistics, the evidence behind the paper's conclusion that
// diverse redundancy would detect at least 94% of the observed bugs.
package main

import (
	"fmt"
	"log"

	"divsql"
)

func main() {
	report, err := divsql.RunStudy()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(report.Table3)
	fmt.Println(report.Headline)
	fmt.Printf("Reproduced headline: %.1f%% incorrect results, %.1f%% crashes, "+
		"%d coincident bugs, none failing more than %d servers, %d non-detectable.\n",
		report.IncorrectResultPct, report.CrashPct,
		report.CoincidentBugs, report.MaxCoincident, report.NonDetectable)
}
