// Divfuzz example: hunt for cross-server divergences with a generated,
// schema-aware workload instead of the fixed bug corpus.
//
// The example runs the differential harness three times: fault-free
// (the oracle-agreement smoke check — zero divergences expected), armed
// with the calibrated corpus fault set under fixed weights, and armed
// again with the coverage feedback loop closed plus bounded table
// cardinality (the -adaptive / -maxrows mode of cmd/divfuzz). The
// adaptive run retunes the generator's statement-class and query-shape
// weights from its own observed coverage every few hundred statements,
// so the same statement budget reaches noticeably more distinct
// divergence fingerprints; the printed coverage summary shows where the
// budget went. Each finding is deduplicated by statement fingerprint,
// shrunk to a minimal statement stream, and replayed to confirm.
//
// The calibrated runs draw SET TRANSACTION ISOLATION LEVEL statements
// (CalibratedConfig arms Config.Isolation by default), so per-dialect
// level acceptance shows up among the fingerprints. cmd/divfuzz exposes
// further dimensions this example leaves at their defaults: -isolation
// adds the same statements to fault-free gates, -params routes a
// weighted share of statements through prepare/bind with typed
// argument vectors (the servers' bind-time coercion surface),
// -planvariants re-runs every answered SELECT under forced full-scan
// and index plans as a self-check of the compiled execution path, and
// -metrics-every prints live hunt telemetry on long runs.
//
// The final stage arms the metamorphic self-check oracles (divfuzz
// -tlp -norec -cert): TLP partition reassembly, NoREC forced full-scan
// re-evaluation and CERT conjunct cardinality restriction convict an
// endpoint from rewrites of its own statements — the verdict source
// that still works when every endpoint shares the same wrong answer —
// and exports the shrunk findings as replayable regression cases
// (divfuzz -regress-out), the corpus format committed under
// regress/cases and replayed by `go test ./regress/...`.
package main

import (
	"fmt"
	"log"
	"os"

	"divsql/internal/difftest"
)

func main() {
	// 1. Fault-free smoke: the four dialects implement the generator's
	// common subset identically to the oracle.
	clean, err := difftest.Run(difftest.DefaultConfig(1, 2000))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("fault-free: %d statements adjudicated, %d divergences (want 0)\n\n",
		clean.Statements, len(clean.Divergences))

	// 2. Armed baseline: corpus faults injected, generator pool aimed at
	// their trigger tables, fixed statement-class weights.
	base := difftest.CalibratedConfig(1, 4000)
	base.Streams = 1
	base.Shrink = false
	baseline, err := difftest.Run(base)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("fixed weights:    %d distinct divergence fingerprints in %d statements\n",
		len(baseline.Divergences), baseline.Statements)

	// 3. The same budget, coverage-guided and cardinality-bounded
	// (divfuzz -adaptive -maxrows 32): the feedback loop pushes the
	// stream into regions still yielding new fingerprints, and bounded
	// tables keep per-statement adjudication cost flat however deep the
	// run goes.
	ad := difftest.CalibratedConfig(1, 4000)
	ad.Streams = 1
	ad.Adaptive = true
	ad.MaxRowsPerTable = 32
	ad.MaxReportsPerServer = 1
	res, err := difftest.Run(ad)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("coverage-guided:  %d distinct divergence fingerprints in %d statements\n\n",
		len(res.Divergences), res.Statements)
	fmt.Print(res.Coverage.Render())

	// 4. Shrunk reports replay standalone: print and confirm the first.
	for _, d := range res.Divergences {
		if d.Report == nil {
			continue
		}
		fmt.Println()
		fmt.Print(d.Report.Render())
		ok, err := difftest.Replay(d.Report)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("replay reproduces: %v\n", ok)
		break
	}

	// 5. Metamorphic self-checks + regress export (divfuzz -tlp -norec
	// -cert -regress-out DIR): the oracles re-derive every answered
	// SELECT from rewrites of itself on each endpoint, so silent result
	// mutations convict without a cross-server vote; each shrunk report
	// lands as a replayable JSON case, deduped by fingerprint.
	regressDir, err := os.MkdirTemp("", "divfuzz-regress-")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(regressDir)
	meta := difftest.CalibratedConfig(1, 4000)
	meta.Streams = 1
	meta.TLP, meta.NoREC, meta.CERT = true, true, true
	meta.MaxReportsPerServer = 4
	meta.RegressDir = regressDir
	mres, err := difftest.Run(meta)
	if err != nil {
		log.Fatal(err)
	}
	perOracle := map[string]int{}
	for _, d := range mres.Divergences {
		if d.Oracle != "" {
			perOracle[d.Oracle]++
		}
	}
	fmt.Printf("\nmetamorphic verdicts by oracle: %v\n", perOracle)
	cases, err := difftest.LoadCases(regressDir)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("regress cases exported: %d\n", len(cases))
	for _, c := range cases {
		ok, err := difftest.ReplayCase(c)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %s (source %q) replays: %v\n", c.Name, c.Oracle, ok)
		break
	}
}
