// Divfuzz example: hunt for cross-server divergences with a generated,
// schema-aware workload instead of the fixed bug corpus.
//
// The example runs the differential harness twice: fault-free (the
// oracle-agreement smoke check — zero divergences expected) and armed
// with the calibrated corpus fault set (every server's injected fault
// regions become discoverable). Each finding is deduplicated by
// statement fingerprint, shrunk to a minimal statement stream, and
// replayed to confirm.
package main

import (
	"fmt"
	"log"

	"divsql/internal/difftest"
)

func main() {
	// 1. Fault-free smoke: the four dialects implement the generator's
	// common subset identically to the oracle.
	clean, err := difftest.Run(difftest.DefaultConfig(1, 2000))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("fault-free: %d statements adjudicated, %d divergences (want 0)\n\n",
		clean.Statements, len(clean.Divergences))

	// 2. Armed hunt: corpus faults injected, generator pool aimed at
	// their trigger tables.
	cfg := difftest.CalibratedConfig(1, 4000)
	cfg.MaxReportsPerServer = 1
	res, err := difftest.Run(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(res.Render(false))

	// 3. Shrunk reports replay standalone: print and confirm the first.
	for _, d := range res.Divergences {
		if d.Report == nil {
			continue
		}
		fmt.Println()
		fmt.Print(d.Report.Render())
		ok, err := difftest.Replay(d.Report)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("replay reproduces: %v\n", ok)
		break
	}
}
