// Benchmark harness: one benchmark per experiment of the paper's
// evaluation (see DESIGN.md §4 for the experiment index). Each benchmark
// regenerates the corresponding table/figure artefact; run with
//
//	go test -bench=. -benchmem
//
// The table benchmarks print their artefact once so a bench run leaves a
// full reproduction transcript.
package divsql

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"divsql/internal/core"
	"divsql/internal/corpus"
	"divsql/internal/dialect"
	"divsql/internal/difftest"
	engplan "divsql/internal/engine/plan"
	"divsql/internal/middleware"
	"divsql/internal/obs"
	"divsql/internal/reliability"
	"divsql/internal/replication"
	"divsql/internal/server"
	"divsql/internal/sql/ast"
	"divsql/internal/sql/parser"
	"divsql/internal/sql/types"
	"divsql/internal/study"
	"divsql/internal/tpcc"
	"divsql/internal/translate"
)

var (
	benchOnce sync.Once
	benchRes  *study.Result
	benchErr  error
)

func studyResult(b *testing.B) *study.Result {
	b.Helper()
	benchOnce.Do(func() {
		benchRes, benchErr = study.New().Run()
	})
	if benchErr != nil {
		b.Fatal(benchErr)
	}
	return benchRes
}

var printed sync.Map

func printOnce(b *testing.B, key, text string) {
	b.Helper()
	if _, loaded := printed.LoadOrStore(key, true); !loaded {
		fmt.Println(text)
	}
}

// BenchmarkStudyRun measures one full study pass: 181 bug scripts
// translated and executed on four servers plus the oracle.
func BenchmarkStudyRun(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := study.New().Run(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable1 regenerates Table 1 (experiment T1).
func BenchmarkTable1(b *testing.B) {
	res := studyResult(b)
	var out string
	for i := 0; i < b.N; i++ {
		out = res.BuildTable1().Render()
	}
	printOnce(b, "t1", out)
}

// BenchmarkTable2 regenerates Table 2 (experiment T2).
func BenchmarkTable2(b *testing.B) {
	res := studyResult(b)
	var out string
	for i := 0; i < b.N; i++ {
		out = res.BuildTable2().Render()
	}
	printOnce(b, "t2", out)
}

// BenchmarkTable3 regenerates Table 3 (experiment T3).
func BenchmarkTable3(b *testing.B) {
	res := studyResult(b)
	var out string
	for i := 0; i < b.N; i++ {
		out = res.BuildTable3().Render()
	}
	printOnce(b, "t3", out)
}

// BenchmarkTable4 regenerates Table 4 (experiment T4).
func BenchmarkTable4(b *testing.B) {
	res := studyResult(b)
	var out string
	for i := 0; i < b.N; i++ {
		out = res.BuildTable4().Render()
	}
	printOnce(b, "t4", out)
}

// BenchmarkHeadlineStats regenerates the Section 7 headline statistics
// (experiment S1).
func BenchmarkHeadlineStats(b *testing.B) {
	res := studyResult(b)
	var out string
	for i := 0; i < b.N; i++ {
		out = res.BuildHeadline().Render()
	}
	printOnce(b, "s1", out)
}

// BenchmarkReliabilityModel regenerates the Section 6 reliability-gain
// analysis with reporting-bias and usage-profile sensitivity
// (experiment E5).
func BenchmarkReliabilityModel(b *testing.B) {
	res := studyResult(b)
	var rep *reliability.Report
	for i := 0; i < b.N; i++ {
		rep = reliability.FromStudy(res)
		for _, p := range rep.Pairs {
			if p.MA == 0 {
				continue
			}
			if _, err := reliability.EstimateWithReporting(p, 0.5); err != nil {
				b.Fatal(err)
			}
			if _, err := reliability.ProfileSensitivity(p, 1.1, 200, 7); err != nil {
				b.Fatal(err)
			}
		}
	}
	printOnce(b, "e5", rep.Render())
}

// BenchmarkTPCCConfigurations runs the TPC-C-like statistical-testing
// campaign against single / non-diverse / diverse configurations
// (experiment E6) and reports simulated statement throughput.
func BenchmarkTPCCConfigurations(b *testing.B) {
	configs := []struct {
		name string
		make func(b *testing.B) core.Executor
	}{
		{"single-OR", func(b *testing.B) core.Executor {
			s, err := server.New(dialect.OR, nil)
			if err != nil {
				b.Fatal(err)
			}
			return s
		}},
		{"replicated-PGx2", func(b *testing.B) core.Executor {
			s1, _ := server.New(dialect.PG, nil)
			s2, _ := server.New(dialect.PG, nil)
			g, err := replication.NewGroup(true, s1, s2)
			if err != nil {
				b.Fatal(err)
			}
			return g
		}},
		{"diverse-PG+OR+MS", func(b *testing.B) core.Executor {
			s1, _ := server.New(dialect.PG, nil)
			s2, _ := server.New(dialect.OR, nil)
			s3, _ := server.New(dialect.MS, nil)
			d, err := middleware.New(middleware.DefaultConfig(), s1, s2, s3)
			if err != nil {
				b.Fatal(err)
			}
			return d
		}},
	}
	for _, cfgCase := range configs {
		b.Run(cfgCase.name, func(b *testing.B) {
			exec := cfgCase.make(b)
			cfg := tpcc.DefaultConfig()
			if err := tpcc.Setup(exec, cfg); err != nil {
				b.Fatal(err)
			}
			driver := tpcc.NewDriver(cfg)
			b.ResetTimer()
			var stmts int
			for i := 0; i < b.N; i++ {
				m, err := driver.Run(exec, 10)
				if err != nil {
					b.Fatal(err)
				}
				stmts += m.Statements
			}
			b.ReportMetric(float64(stmts)/float64(b.N), "stmts/op")
		})
	}
}

// BenchmarkTPCCConcurrent measures the execution path's hot-loop cost
// (experiment C1): wall-clock throughput of the read-heavy TPC-C mix at
// 1/4/16 concurrent terminals against one simulated server, in both
// execution modes — inline (every statement rendered to literal SQL and
// reparsed server-side) and prepared (each terminal prepares the mix's
// fixed templates once and re-executes them with typed arguments, so the
// parse leaves the hot loop). Each terminal runs in its own session;
// read-only statements execute in parallel under the engine's read lock,
// so throughput scales with the terminal count, and prepared must beat
// inline at every terminal count. (Simulated latency is not slept here —
// the benchmark measures the real CPU cost of the path, which the
// 1ms-per-statement sleep of earlier revisions drowned out.)
func BenchmarkTPCCConcurrent(b *testing.B) {
	for _, terminals := range []int{1, 4, 16} {
		for _, mode := range []string{"inline", "prepared"} {
			b.Run(fmt.Sprintf("terminals=%d/%s", terminals, mode), func(b *testing.B) {
				// Small per-warehouse tables keep engine scan cost low, so
				// the per-statement fixed costs the two modes differ in
				// (parse + plan vs plan-cache hit) are what the benchmark
				// resolves.
				cfg := tpcc.Config{
					Warehouses:           16,
					DistrictsPerWH:       2,
					CustomersPerDistrict: 4,
					Items:                8,
					Seed:                 1,
				}
				opts := tpcc.ConcurrentOptions{
					Terminals:     terminals,
					TxPerTerminal: 50,
					Mix:           tpcc.ReadHeavyMix(),
					Prepared:      mode == "prepared",
				}
				b.ResetTimer()
				total := 0
				var busy time.Duration
				var hits, misses uint64
				for i := 0; i < b.N; i++ {
					// Fresh database per iteration: terminals draw HISTORY ids
					// from fixed per-terminal ranges, so reusing one database
					// across iterations would turn every Payment into a
					// duplicate-key error and corrupt the throughput figure.
					b.StopTimer()
					srv, err := server.New(dialect.PG, nil)
					if err != nil {
						b.Fatal(err)
					}
					if err := tpcc.Setup(srv, cfg); err != nil {
						b.Fatal(err)
					}
					b.StartTimer()
					start := time.Now()
					m, err := tpcc.RunConcurrent(srv, cfg, opts)
					busy += time.Since(start)
					if err != nil {
						b.Fatal(err)
					}
					if m.Errors > 0 {
						b.Fatalf("%d/%d transactions errored; tx/s would be meaningless", m.Errors, m.Transactions)
					}
					total += m.Transactions
					st := srv.PlanCacheStats()
					hits += st.Hits
					misses += st.Misses
				}
				b.ReportMetric(float64(total)/busy.Seconds(), "tx/s")
				if lookups := hits + misses; lookups > 0 {
					// How much of the mix the shared compiled-plan cache
					// absorbed: the prepared mode should sit near 1.0 and the
					// inline mode close behind it (same cache, keyed by
					// rendered text), making the residual gap pure parse cost.
					b.ReportMetric(float64(hits)/float64(lookups), "plan-cache-hit-rate")
				}
			})
		}
	}
}

// BenchmarkShardedTPCC measures what the shard router buys (experiment
// C3): wall-clock TPC-C throughput at 1/2/4 shards, each shard an
// independent diverse replica set with its own adjudication loop. The
// deployment runs with WallClock adjudication — each replica set really
// spends the adjudicated latency inside its serialization latch, as a
// networked deployment would — so a single set's loop is the bottleneck
// and sharding is the only way to scale writes. Tables partition by
// warehouse id (tpcc.BandColumns); terminals are pinned to warehouses,
// so the mix is overwhelmingly single-shard with ITEM replicated
// everywhere. Throughput at 4 shards must comfortably exceed 1.6x the
// single-shard figure.
func BenchmarkShardedTPCC(b *testing.B) {
	for _, shards := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			cfg := tpcc.Config{
				Warehouses:           8,
				DistrictsPerWH:       2,
				CustomersPerDistrict: 4,
				Items:                8,
				Seed:                 1,
			}
			opts := tpcc.ConcurrentOptions{
				Terminals:     8,
				TxPerTerminal: 12,
				Prepared:      true,
			}
			total := 0
			var busy time.Duration
			for i := 0; i < b.N; i++ {
				// Fresh deployment per iteration (same reason as the
				// concurrent benchmark: per-terminal HISTORY id ranges).
				b.StopTimer()
				db, err := OpenShardedWith(
					ShardedConfig{Shards: shards, BandColumns: tpcc.BandColumns(), WallClock: true},
					[]Option{WithFaults(false)}, PG, OR)
				if err != nil {
					b.Fatal(err)
				}
				exec, ok := Executor(db)
				if !ok {
					b.Fatal("sharded DB has no executor")
				}
				if err := tpcc.Setup(exec, cfg); err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
				start := time.Now()
				m, err := tpcc.RunConcurrent(exec, cfg, opts)
				busy += time.Since(start)
				if err != nil {
					b.Fatal(err)
				}
				if m.Errors > 0 {
					b.Fatalf("%d/%d transactions errored; tx/s would be meaningless", m.Errors, m.Transactions)
				}
				total += m.Transactions
			}
			b.ReportMetric(float64(total)/busy.Seconds(), "tx/s")
		})
	}
}

// BenchmarkIndexLookup quantifies the analyzer's index-backed access
// paths (experiment C2): the same pre-parsed point and range SELECTs
// execute under the forced-index and forced-full-scan plan variants —
// the pair the DQP-lite difftest gate proves result-identical — so the
// ratio between the two is pure access-path cost. At 10k rows the
// indexed point lookup must be at least an order of magnitude faster
// than the full scan.
func BenchmarkIndexLookup(b *testing.B) {
	for _, rows := range []int{1000, 10000, 100000} {
		srv, err := server.New(dialect.PG, nil)
		if err != nil {
			b.Fatal(err)
		}
		sess := srv.NewSession()
		mustB(b, srv, "CREATE TABLE KV (ID INT PRIMARY KEY, V INT, S VARCHAR(16))")
		const batch = 200
		for lo := 1; lo <= rows; lo += batch {
			var sb strings.Builder
			sb.WriteString("INSERT INTO KV (ID, V, S) VALUES ")
			for id := lo; id < lo+batch && id <= rows; id++ {
				if id > lo {
					sb.WriteString(", ")
				}
				fmt.Fprintf(&sb, "(%d, %d, 'v%d')", id, id*7, id)
			}
			mustB(b, srv, sb.String())
		}
		pointStmt, err := parser.Parse("SELECT V FROM KV WHERE ID = $1")
		if err != nil {
			b.Fatal(err)
		}
		rangeStmt, err := parser.Parse("SELECT V FROM KV WHERE ID BETWEEN $1 AND $2")
		if err != nil {
			b.Fatal(err)
		}
		pointSel, rangeSel := pointStmt.(*ast.Select), rangeStmt.(*ast.Select)
		for _, tc := range []struct {
			name  string
			force engplan.Force
		}{
			{"indexed", engplan.ForceIndex},
			{"fullscan", engplan.ForceFullScan},
		} {
			b.Run(fmt.Sprintf("rows=%d/point-%s", rows, tc.name), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					k := int64(i%rows) + 1
					res, err := sess.ExecVariant(pointSel, tc.force, types.NewInt(k))
					if err != nil {
						b.Fatal(err)
					}
					if len(res.Rows) != 1 {
						b.Fatalf("point probe for ID=%d returned %d rows", k, len(res.Rows))
					}
				}
			})
			b.Run(fmt.Sprintf("rows=%d/range-%s", rows, tc.name), func(b *testing.B) {
				span := rows - 99
				for i := 0; i < b.N; i++ {
					lo := int64(i%span) + 1
					res, err := sess.ExecVariant(rangeSel, tc.force, types.NewInt(lo), types.NewInt(lo+99))
					if err != nil {
						b.Fatal(err)
					}
					if len(res.Rows) != 100 {
						b.Fatalf("range scan [%d, %d] returned %d rows", lo, lo+99, len(res.Rows))
					}
				}
			})
		}
	}
}

// BenchmarkComparatorNormalization is the A1 ablation: the
// representation-tolerant comparator versus strict comparison over
// results that differ only in representation. The tolerant comparator
// must report equality (no false alarms); the strict one must not.
func BenchmarkComparatorNormalization(b *testing.B) {
	srvA, _ := server.New(dialect.PG, nil)
	srvB, _ := server.New(dialect.OR, nil)
	for _, s := range []*server.Server{srvA, srvB} {
		if _, _, err := s.Exec("CREATE TABLE T (A FLOAT, S CHAR(10))"); err != nil {
			b.Fatal(err)
		}
		if _, _, err := s.Exec("INSERT INTO T VALUES (0.1, 'pad')"); err != nil {
			b.Fatal(err)
		}
	}
	// Make representations diverge: one server computes 0.1+0.2 in two
	// steps, padding differs.
	resA, _, err := srvA.Exec("SELECT A + 0.2 AS X, S FROM T")
	if err != nil {
		b.Fatal(err)
	}
	resB, _, err := srvB.Exec("SELECT 0.30000000000000004 AS X, 'pad   ' AS S FROM T")
	if err != nil {
		b.Fatal(err)
	}
	tolerant := core.DefaultCompareOptions()
	strict := core.StrictCompareOptions()
	var falseAlarmsTolerant, falseAlarmsStrict int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !core.Equal(resA, resB, tolerant) {
			falseAlarmsTolerant++
		}
		if !core.Equal(resA, resB, strict) {
			falseAlarmsStrict++
		}
	}
	b.StopTimer()
	if falseAlarmsTolerant != 0 {
		b.Fatalf("tolerant comparator raised %d false alarms", falseAlarmsTolerant)
	}
	if falseAlarmsStrict != b.N {
		b.Fatalf("strict comparator missed representation differences")
	}
	b.ReportMetric(float64(falseAlarmsStrict)/float64(b.N), "strict-false-alarms/op")
}

// BenchmarkMaskingAblation is the A2 ablation: detection/masking rate of
// non-diverse vs diverse-pair vs diverse-triple configurations against
// an injected wrong-result fault campaign.
func BenchmarkMaskingAblation(b *testing.B) {
	type outcome struct{ detected, masked, silentWrong int }
	campaign := func(b *testing.B, mk func() core.Executor, n int) outcome {
		var out outcome
		for i := 0; i < n; i++ {
			exec := mk()
			mustB(b, exec, "CREATE TABLE R (N FLOAT)")
			mustB(b, exec, "INSERT INTO R VALUES (1.00000007)")
			res, _, err := exec.Exec("SELECT N * 16777216.0 AS P FROM R")
			switch {
			case err != nil:
				out.detected++
			case res.Rows[0][0].String() == "1.6777218e+07":
				out.silentWrong++
			default:
				out.masked++
			}
		}
		return out
	}
	cases := []struct {
		name string
		mk   func() core.Executor
	}{
		{"non-diverse-PGx2", func() core.Executor {
			s1, _ := server.New(dialect.PG, nil)
			s2, _ := server.New(dialect.PG, nil)
			g, _ := replication.NewGroup(true, s1, s2)
			return g
		}},
		{"diverse-pair-PG+OR", func() core.Executor {
			s1, _ := server.New(dialect.PG, nil)
			s2, _ := server.New(dialect.OR, nil)
			cfg := middleware.DefaultConfig()
			cfg.Rephrase = false
			d, _ := middleware.New(cfg, s1, s2)
			return d
		}},
		{"diverse-triple-PG+OR+IB", func() core.Executor {
			s1, _ := server.New(dialect.PG, nil)
			s2, _ := server.New(dialect.OR, nil)
			s3, _ := server.New(dialect.IB, nil)
			d, _ := middleware.New(middleware.DefaultConfig(), s1, s2, s3)
			return d
		}},
	}
	for _, tc := range cases {
		b.Run(tc.name, func(b *testing.B) {
			out := campaign(b, tc.mk, b.N)
			b.ReportMetric(float64(out.silentWrong)/float64(b.N), "silent-wrong/op")
			b.ReportMetric(float64(out.detected)/float64(b.N), "detected/op")
			b.ReportMetric(float64(out.masked)/float64(b.N), "masked/op")
		})
	}
}

func mustB(b *testing.B, exec core.Executor, sql string) {
	b.Helper()
	if _, _, err := exec.Exec(sql); err != nil {
		b.Fatalf("%s: %v", sql, err)
	}
}

// BenchmarkMiddlewareOverhead compares single-statement latency of a
// single server against diverse configurations (the paper's Section 6
// cost discussion: "run-time cost of the synchronisation and
// consistency enforcing mechanisms").
func BenchmarkMiddlewareOverhead(b *testing.B) {
	mkSingle := func() core.Executor {
		s, _ := server.New(dialect.OR, nil)
		return s
	}
	mkPair := func() core.Executor {
		s1, _ := server.New(dialect.PG, nil)
		s2, _ := server.New(dialect.OR, nil)
		d, _ := middleware.New(middleware.DefaultConfig(), s1, s2)
		return d
	}
	mkTriple := func() core.Executor {
		s1, _ := server.New(dialect.PG, nil)
		s2, _ := server.New(dialect.OR, nil)
		s3, _ := server.New(dialect.MS, nil)
		d, _ := middleware.New(middleware.DefaultConfig(), s1, s2, s3)
		return d
	}
	for _, tc := range []struct {
		name string
		mk   func() core.Executor
	}{
		{"single", mkSingle}, {"diverse-pair", mkPair}, {"diverse-triple", mkTriple},
	} {
		b.Run(tc.name, func(b *testing.B) {
			exec := tc.mk()
			mustB(b, exec, "CREATE TABLE T (A INT, S VARCHAR(20))")
			for i := 0; i < 64; i++ {
				mustB(b, exec, fmt.Sprintf("INSERT INTO T VALUES (%d, 'row%d')", i, i))
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := exec.Exec("SELECT A, S FROM T WHERE A < 32 ORDER BY A"); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkEngineSelect measures raw engine query throughput (substrate
// sanity; not a paper artefact).
func BenchmarkEngineSelect(b *testing.B) {
	s, _ := server.New(dialect.PG, nil)
	mustB(b, s, "CREATE TABLE T (A INT, B FLOAT, S VARCHAR(20))")
	for i := 0; i < 256; i++ {
		mustB(b, s, fmt.Sprintf("INSERT INTO T VALUES (%d, %d.5, 'v%d')", i, i, i))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := s.Exec("SELECT A, SUM(B) AS SB FROM T WHERE A > 100 GROUP BY A ORDER BY A"); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTranslation measures dialect-translation throughput over the
// full corpus (every bug script into every other dialect).
func BenchmarkTranslation(b *testing.B) {
	bugs := corpus.All()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := range bugs {
			bug := &bugs[j]
			for _, tgt := range dialect.AllServers {
				if tgt == bug.Server {
					continue
				}
				_, _ = translate.Script(bug.Script, bug.Server, tgt)
			}
		}
	}
}

// BenchmarkReadPolicyTradeoff measures the paper's §7 performance-vs-
// dependability dial: compare-every-query vs read-one-replica on a
// diverse triple.
func BenchmarkReadPolicyTradeoff(b *testing.B) {
	for _, tc := range []struct {
		name   string
		policy middleware.ReadPolicy
	}{
		{"compare-all-queries", middleware.ReadCompareAll},
		{"read-one-replica", middleware.ReadOne},
	} {
		b.Run(tc.name, func(b *testing.B) {
			s1, _ := server.New(dialect.PG, nil)
			s2, _ := server.New(dialect.OR, nil)
			s3, _ := server.New(dialect.MS, nil)
			cfg := middleware.DefaultConfig()
			cfg.Reads = tc.policy
			d, err := middleware.New(cfg, s1, s2, s3)
			if err != nil {
				b.Fatal(err)
			}
			mustB(b, d, "CREATE TABLE T (A INT, S VARCHAR(20))")
			for i := 0; i < 64; i++ {
				mustB(b, d, fmt.Sprintf("INSERT INTO T VALUES (%d, 'r%d')", i, i))
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := d.Exec("SELECT A, S FROM T WHERE A < 32 ORDER BY A"); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkDiffFuzz measures the differential harness's adjudicated
// throughput: generated statements executed on four servers plus the
// oracle, each adjudicated with the representation-tolerant comparator.
// The custom metric stmts/s is the number of generated (5-way
// adjudicated) statements per second.
func BenchmarkDiffFuzz(b *testing.B) {
	total := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg := difftest.CalibratedConfig(int64(i+1), 1000)
		cfg.Shrink = false
		res, err := difftest.Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		total += res.Statements
	}
	b.ReportMetric(float64(total)/b.Elapsed().Seconds(), "stmts/s")
}

// BenchmarkDiffFuzzDeep contrasts the two deep-run regimes of the
// calibrated hunt (experiment D1): the fixed-weight, unbounded-table
// baseline against the coverage-guided (-adaptive) run with bounded
// table cardinality (-maxrows). The custom metrics tell the story:
// us/stmt must stay ~flat for the bounded run as n quadruples (linear
// total cost — the cardinality bound holding), while it climbs for the
// unbounded baseline; fingerprints/kstmt shows the coverage feedback
// converting the same statement budget into more distinct divergence
// regions.
func BenchmarkDiffFuzzDeep(b *testing.B) {
	for _, tc := range []struct {
		name     string
		n        int
		maxRows  int
		adaptive bool
	}{
		{"unbounded-fixed/n=2500", 2500, 0, false},
		{"unbounded-fixed/n=10000", 10000, 0, false},
		{"bounded-adaptive/n=2500", 2500, 16, true},
		{"bounded-adaptive/n=10000", 10000, 16, true},
	} {
		b.Run(tc.name, func(b *testing.B) {
			stmts, fps := 0, 0
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				cfg := difftest.CalibratedConfig(1, tc.n)
				cfg.Streams = 1
				cfg.Shrink = false
				cfg.Adaptive = tc.adaptive
				cfg.MaxRowsPerTable = tc.maxRows
				res, err := difftest.Run(cfg)
				if err != nil {
					b.Fatal(err)
				}
				stmts += res.Statements
				fps += len(res.Divergences)
			}
			b.ReportMetric(b.Elapsed().Seconds()*1e6/float64(stmts), "us/stmt")
			b.ReportMetric(float64(fps)/float64(stmts)*1000, "fingerprints/kstmt")
		})
	}
}

// BenchmarkObsOverhead measures the per-statement cost of the metrics
// instrumentation (experiment O2): the wire server's per-frame pattern —
// one counter increment plus one latency-histogram observation around a
// timed section — against the bare time.Now/time.Since pair it wraps.
// The delta is the whole per-request price of -metrics, and it must stay
// in the tens of nanoseconds so instrumented TPC-C throughput is
// unchanged within noise.
func BenchmarkObsOverhead(b *testing.B) {
	var sink time.Duration
	b.Run("uninstrumented", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			start := time.Now()
			sink += time.Since(start)
		}
	})
	b.Run("instrumented", func(b *testing.B) {
		var c obs.Counter
		h := obs.NewHistogram(obs.DefBuckets()...)
		for i := 0; i < b.N; i++ {
			start := time.Now()
			c.Inc()
			h.Observe(time.Since(start))
		}
		if c.Value() != uint64(b.N) || h.Count() != uint64(b.N) {
			b.Fatal("instrument lost observations")
		}
	})
	_ = sink
}

// BenchmarkDiffFuzzFaultFree is the clean-path baseline: no faults, no
// divergences, pure generate-execute-adjudicate cost.
func BenchmarkDiffFuzzFaultFree(b *testing.B) {
	total := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := difftest.Run(difftest.DefaultConfig(int64(i+1), 1000))
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Divergences) != 0 {
			b.Fatalf("fault-free run diverged: %s", res.Render(false))
		}
		total += res.Statements
	}
	b.ReportMetric(float64(total)/b.Elapsed().Seconds(), "stmts/s")
}
