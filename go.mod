module divsql

go 1.23
