module divsql

go 1.24
