package divsql

import (
	"errors"
	"strings"
	"testing"
)

func TestOpenSingle(t *testing.T) {
	for _, name := range AllServers() {
		db, err := Open(name)
		if err != nil {
			t.Fatalf("Open(%s): %v", name, err)
		}
		if _, err := db.Exec("CREATE TABLE T (A INT)"); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if _, err := db.Exec("INSERT INTO T VALUES (1)"); err != nil {
			t.Fatal(err)
		}
		res, err := db.Exec("SELECT A FROM T")
		if err != nil || len(res.Rows) != 1 || res.Rows[0][0] != "1" {
			t.Errorf("%s select: %+v %v", name, res, err)
		}
		if err := db.Close(); err != nil {
			t.Error(err)
		}
	}
}

func TestOpenDiverseMasksInjectedFault(t *testing.T) {
	// The full calibrated fault corpus is injected; querying inside a
	// known failure region (bug PG-77's arithmetic) must still give the
	// right answer through a masking triple.
	db, err := OpenDiverse(PG, OR, IB)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if _, err := db.Exec("CREATE TABLE R (N FLOAT)"); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec("INSERT INTO R VALUES (1.00000007)"); err != nil {
		t.Fatal(err)
	}
	res, err := db.Exec("SELECT N * 16777216.0 AS P FROM R")
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0] == "1.6777218e+07" {
		t.Error("client received PG's wrong value; majority should mask it")
	}
	m, ok := Metrics(db)
	if !ok || m.MaskedFailures == 0 {
		t.Errorf("metrics: %+v ok=%v", m, ok)
	}
}

func TestOpenDiversePairDetects(t *testing.T) {
	db, err := OpenDiverseWith([]Option{WithRephrasing(false)}, PG, OR)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if _, err := db.Exec("CREATE TABLE R (N FLOAT)"); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec("INSERT INTO R VALUES (1.00000007)"); err != nil {
		t.Fatal(err)
	}
	_, err = db.Exec("SELECT N * 16777216.0 AS P FROM R")
	if err == nil || !strings.Contains(err.Error(), "divergence") {
		t.Errorf("pair must detect: %v", err)
	}
}

func TestOpenReplicatedReturnsWrongDataSilently(t *testing.T) {
	db, err := OpenReplicated(PG, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if _, err := db.Exec("CREATE TABLE R (N FLOAT)"); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec("INSERT INTO R VALUES (1.00000007)"); err != nil {
		t.Fatal(err)
	}
	res, err := db.Exec("SELECT N * 16777216.0 AS P FROM R")
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0] != "1.6777218e+07" {
		t.Errorf("baseline should silently return the wrong value, got %v", res.Rows[0][0])
	}
}

func TestWithFaultsDisabled(t *testing.T) {
	db, err := Open(PG, WithFaults(false))
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	// Engine quirks remain (they are the server's nature), but no
	// corpus faults are injected; a plain query works.
	if _, err := db.Exec("CREATE TABLE T (A INT)"); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec("INSERT INTO T VALUES (2)"); err != nil {
		t.Fatal(err)
	}
	res, err := db.Exec("SELECT A FROM T")
	if err != nil || res.Rows[0][0] != "2" {
		t.Errorf("%+v %v", res, err)
	}
}

func TestOpenValidation(t *testing.T) {
	if _, err := OpenDiverse(); err == nil {
		t.Error("OpenDiverse() must require names")
	}
	if _, err := OpenReplicated(PG, 0); err == nil {
		t.Error("OpenReplicated n=0 must fail")
	}
	if _, err := Open("NOPE"); err == nil {
		t.Error("unknown server must fail")
	}
}

func TestExecutorExposed(t *testing.T) {
	db, err := Open(OR)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := Executor(db); !ok {
		t.Error("single server must expose an executor")
	}
	var fake DB = fakeDB{}
	if _, ok := Executor(fake); ok {
		t.Error("foreign DB must not expose an executor")
	}
}

type fakeDB struct{}

func (fakeDB) Exec(string) (*Result, error) { return nil, errors.New("no") }
func (fakeDB) Prepare(string) (Stmt, error) { return nil, errors.New("no") }
func (fakeDB) Session() (Session, error)    { return nil, errors.New("no") }
func (fakeDB) Close() error                 { return nil }

func TestRunStudyReproducesHeadline(t *testing.T) {
	if testing.Short() {
		t.Skip("full study in short mode")
	}
	rep, err := RunStudy()
	if err != nil {
		t.Fatal(err)
	}
	if rep.MaxCoincident != 2 || rep.CoincidentBugs != 12 || rep.NonDetectable != 4 {
		t.Errorf("headline: %+v", rep)
	}
	if rep.IncorrectResultPct < 64.4 || rep.IncorrectResultPct > 64.6 {
		t.Errorf("incorrect-result pct %.2f", rep.IncorrectResultPct)
	}
	if rep.CrashPct < 17.0 || rep.CrashPct > 17.2 {
		t.Errorf("crash pct %.2f", rep.CrashPct)
	}
	for name, tbl := range map[string]string{
		"Table1": rep.Table1, "Table2": rep.Table2,
		"Table3": rep.Table3, "Table4": rep.Table4,
		"Headline": rep.Headline, "Gains": rep.Gains,
	} {
		if len(tbl) < 80 {
			t.Errorf("%s too short", name)
		}
	}
}

func TestAffectedCount(t *testing.T) {
	db, err := Open(IB)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if _, err := db.Exec("CREATE TABLE T (A INT)"); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec("INSERT INTO T VALUES (1), (2), (3)"); err != nil {
		t.Fatal(err)
	}
	res, err := db.Exec("UPDATE T SET A = A + 1")
	if err != nil || res.Affected != 3 {
		t.Errorf("affected: %+v %v", res, err)
	}
}
