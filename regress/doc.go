// Package regress holds the persistent, replayable regression corpus:
// every JSON file under cases/ is one shrunk divergence a hunt once
// found (differential or metamorphic-oracle verdict), captured with the
// schema DDL, data, trigger statement and fault configuration that
// provoked it. The replay test re-executes every case through a fresh
// server/oracle stack and asserts the recorded divergence still
// reproduces under the recorded verdict source — so a refactor that
// silently repairs the fault injection path, the comparator, or a
// self-check oracle fails loudly instead of rotting the hunt.
//
// Grow the corpus from any hunt with `divfuzz -regress-out regress/cases`
// (export is deduplicated by verdict fingerprint: existing case files
// are never rewritten). Cases are plain difftest.RegressCase JSON; see
// CONTRIBUTING.md for the layout and curation notes.
package regress
