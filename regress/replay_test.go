package regress

import (
	"testing"

	"divsql/internal/difftest"
)

// TestReplayCorpus replays every committed case through a fresh stack
// and asserts the recorded divergence reproduces under the recorded
// verdict source. This is the regression gate: a change that makes any
// case stop reproducing either fixed the simulated fault path (update
// or retire the case deliberately) or broke the machinery that detects
// it (fix the change).
func TestReplayCorpus(t *testing.T) {
	cases, err := difftest.LoadCases("cases")
	if err != nil {
		t.Fatal(err)
	}
	if len(cases) == 0 {
		t.Fatal("empty corpus: regress/cases holds no case files")
	}
	for _, c := range cases {
		t.Run(c.Name, func(t *testing.T) {
			ok, err := difftest.ReplayCase(c)
			if err != nil {
				t.Fatal(err)
			}
			if !ok {
				t.Fatalf("case %s (server %s, oracle %q, fp %q) no longer reproduces",
					c.Name, c.Server, c.Oracle, c.Fingerprint)
			}
		})
	}
}

// TestCorpusWellFormed asserts corpus hygiene beyond what replay needs:
// names match content (the export dedup key), and metamorphic cases
// name a known verdict source.
func TestCorpusWellFormed(t *testing.T) {
	cases, err := difftest.LoadCases("cases")
	if err != nil {
		t.Fatal(err)
	}
	known := map[string]bool{"": true}
	for _, src := range difftest.VerdictSources {
		known[src] = true
	}
	for _, c := range cases {
		if !known[c.Oracle] {
			t.Errorf("case %s: unknown verdict source %q", c.Name, c.Oracle)
		}
		if len(c.Stream) == 0 {
			t.Errorf("case %s: empty stream", c.Name)
		}
	}
}
